"""The inference interpreter and kernel registry.

Mirrors TFLite Micro's structure: a registry maps opcodes to kernels;
the interpreter walks the operator list resolving tensors.  Replacing a
registry entry is exactly how CFU Playground users provide "an optimized
kernel that uses the new custom instructions" (Section II-D) — see
:mod:`repro.kernels` for the accelerated variants.
"""

from __future__ import annotations

import numpy as np

from .ops import conv as conv_ops
from .ops import dense as dense_ops
from .ops import depthwise as dw_ops
from .ops import elementwise as ew_ops
from .ops import misc as misc_ops
from .ops import pooling as pool_ops


class KernelRegistry:
    """Opcode -> kernel callable(op, input_arrays, model) -> output array."""

    def __init__(self, kernels=None):
        self._kernels = dict(kernels or {})

    def register(self, opcode, kernel):
        self._kernels[opcode] = kernel
        return kernel

    def lookup(self, opcode):
        try:
            return self._kernels[opcode]
        except KeyError:
            raise KeyError(f"no kernel registered for {opcode}") from None

    def copy(self):
        return KernelRegistry(self._kernels)

    def __contains__(self, opcode):
        return opcode in self._kernels


# --- reference kernels ---------------------------------------------------------------

def _conv2d_kernel(op, inputs, model):
    data, filters, bias = inputs
    in_tensor = model.tensor(op.inputs[0])
    out_tensor = model.tensor(op.outputs[0])
    p = op.params
    return conv_ops.conv2d_reference(
        data, in_tensor.quant.zero_point, filters, bias,
        p["stride"], p["padding"], p["out_multipliers"], p["out_shifts"],
        out_tensor.quant.zero_point, p["activation_min"], p["activation_max"],
    )


def _depthwise_kernel(op, inputs, model):
    data, filters, bias = inputs
    in_tensor = model.tensor(op.inputs[0])
    out_tensor = model.tensor(op.outputs[0])
    p = op.params
    return dw_ops.depthwise_reference(
        data, in_tensor.quant.zero_point, filters, bias,
        p["stride"], p["padding"], p["out_multipliers"], p["out_shifts"],
        out_tensor.quant.zero_point, p["depth_multiplier"],
        p["activation_min"], p["activation_max"],
    )


def _fully_connected_kernel(op, inputs, model):
    data, weights, bias = inputs
    in_tensor = model.tensor(op.inputs[0])
    out_tensor = model.tensor(op.outputs[0])
    p = op.params
    return dense_ops.fully_connected_reference(
        data, in_tensor.quant.zero_point, weights, bias,
        p["out_multiplier"], p["out_shift"], out_tensor.quant.zero_point,
        p["activation_min"], p["activation_max"],
    )


def _average_pool_kernel(op, inputs, model):
    p = op.params
    return pool_ops.average_pool_reference(
        inputs[0], p["pool_size"], p["stride"], p["padding"]
    )


def _max_pool_kernel(op, inputs, model):
    p = op.params
    return pool_ops.max_pool_reference(
        inputs[0], p["pool_size"], p["stride"], p["padding"]
    )


def _add_kernel(op, inputs, model):
    p = op.params
    return ew_ops.add_reference(
        inputs[0], inputs[1], p, p["activation_min"], p["activation_max"]
    )


def _reshape_kernel(op, inputs, model):
    return misc_ops.reshape_reference(inputs[0], op.params["new_shape"])


def _softmax_kernel(op, inputs, model):
    return misc_ops.softmax_reference(inputs[0], op.params["input_scale"])


def _mean_kernel(op, inputs, model):
    return misc_ops.mean_reference(inputs[0], op.params["axes"])


def _pad_kernel(op, inputs, model):
    in_tensor = model.tensor(op.inputs[0])
    return misc_ops.pad_reference(
        inputs[0], op.params["paddings"], in_tensor.quant.zero_point
    )


def reference_registry():
    """The stock kernel set — TFLM's reference kernels."""
    return KernelRegistry({
        "CONV_2D": _conv2d_kernel,
        "DEPTHWISE_CONV_2D": _depthwise_kernel,
        "FULLY_CONNECTED": _fully_connected_kernel,
        "AVERAGE_POOL_2D": _average_pool_kernel,
        "MAX_POOL_2D": _max_pool_kernel,
        "ADD": _add_kernel,
        "RESHAPE": _reshape_kernel,
        "SOFTMAX": _softmax_kernel,
        "MEAN": _mean_kernel,
        "PAD": _pad_kernel,
    })


def metrics_listener(registry, estimate=None, **labels):
    """Build an interpreter listener that feeds per-operator metrics.

    Counts invocations and output elements per operator into ``registry``
    (a :class:`~repro.core.metrics.MetricsRegistry`).  With ``estimate``
    (an :class:`~repro.perf.estimator.InferenceEstimate`) each invocation
    also charges the operator's estimated cycles, giving the same
    per-operator cycle view the paper's on-board profiler prints — but
    as mergeable metric series.
    """
    cycles_by_op = {}
    if estimate is not None:
        for cost in estimate.op_costs:
            cycles_by_op[cost.op_name] = cost.cycles

    def listener(op, inputs, output):
        registry.counter("tflm_op_invocations", op=op.name,
                         opcode=op.opcode, **labels).inc()
        registry.counter("tflm_output_elements", op=op.name,
                         opcode=op.opcode, **labels).add(int(output.size))
        cycles = cycles_by_op.get(op.name)
        if cycles is not None:
            registry.counter("tflm_op_cycles", op=op.name,
                             opcode=op.opcode, **labels).add(int(cycles))

    return listener


class Interpreter:
    """Runs a model graph with a given kernel registry.

    ``listeners`` are called as ``listener(op, inputs, output)`` after
    every operator — the hook the profiler and the performance machine
    attach to.
    """

    def __init__(self, model, registry=None, listeners=()):
        self.model = model
        self.registry = registry or reference_registry()
        self.listeners = list(listeners)
        for op in model.operators:
            if op.opcode not in self.registry:
                raise KeyError(f"model needs kernel {op.opcode}")

    def invoke(self, input_array):
        """Run one inference; returns the output array."""
        model = self.model
        input_tensor = model.input
        input_array = np.asarray(input_array, dtype=input_tensor.dtype)
        if input_array.shape != input_tensor.shape:
            raise ValueError(
                f"input shape {input_array.shape} != {input_tensor.shape}"
            )
        activations = {model.input_names[0]: input_array}

        def resolve(name):
            tensor = model.tensor(name)
            if tensor.is_constant:
                return tensor.data
            return activations[name]

        for op in model.operators:
            inputs = [resolve(name) for name in op.inputs]
            kernel = self.registry.lookup(op.opcode)
            output = kernel(op, inputs, model)
            activations[op.outputs[0]] = output
            for listener in self.listeners:
                listener(op, inputs, output)
        return activations[model.output_names[0]]
