"""Model graph representation: operators over named tensors."""

from __future__ import annotations

from dataclasses import dataclass, field

OPCODES = (
    "CONV_2D",
    "DEPTHWISE_CONV_2D",
    "FULLY_CONNECTED",
    "AVERAGE_POOL_2D",
    "MAX_POOL_2D",
    "ADD",
    "PAD",
    "RESHAPE",
    "SOFTMAX",
    "MEAN",
)


@dataclass
class Operator:
    """One graph node: an opcode, tensor names, and prepared parameters.

    ``params`` holds everything a kernel needs at Invoke time (strides,
    precomputed requantization multipliers, activation clamps), mirroring
    TFLM's Prepare/Eval split: all floating-point work happens at model
    construction, kernels run on integers only.
    """

    opcode: str
    name: str
    inputs: list
    outputs: list
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.opcode not in OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")

    @property
    def macs(self):
        return self.params.get("macs", 0)

    def __repr__(self):
        return f"Operator({self.name}: {self.opcode})"


class Model:
    """An ordered operator graph with a tensor table (TFLite flatbuffer
    stand-in)."""

    def __init__(self, name, tensors, operators, input_names, output_names):
        self.name = name
        self.tensors = dict(tensors)
        self.operators = list(operators)
        self.input_names = list(input_names)
        self.output_names = list(output_names)
        self._validate()

    def _validate(self):
        defined = set(self.tensors)
        for op in self.operators:
            for tensor_name in list(op.inputs) + list(op.outputs):
                if tensor_name not in defined:
                    raise ValueError(
                        f"operator {op.name} references unknown tensor {tensor_name}"
                    )
        for name in self.input_names + self.output_names:
            if name not in defined:
                raise ValueError(f"model I/O references unknown tensor {name}")

    def tensor(self, name):
        return self.tensors[name]

    @property
    def input(self):
        return self.tensors[self.input_names[0]]

    @property
    def output(self):
        return self.tensors[self.output_names[0]]

    def total_macs(self):
        return sum(op.macs for op in self.operators)

    def macs_by_opcode(self):
        totals = {}
        for op in self.operators:
            totals[op.opcode] = totals.get(op.opcode, 0) + op.macs
        return totals

    def weights_bytes(self):
        """Bytes of constant data (the .rodata the KWS study moves around)."""
        return sum(t.bytes for t in self.tensors.values() if t.is_constant)

    def summary(self):
        lines = [f"Model {self.name}: {len(self.operators)} ops, "
                 f"{self.total_macs():,} MACs, "
                 f"{self.weights_bytes():,} weight bytes"]
        for op in self.operators:
            out = self.tensors[op.outputs[0]]
            lines.append(
                f"  {op.name:28s} {op.opcode:20s} -> {out.shape}"
                f"  macs={op.macs:,}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return f"Model({self.name}, {len(self.operators)} ops)"
