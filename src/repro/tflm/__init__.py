"""TFLite-Micro stand-in: int8 inference with exact TFLite arithmetic."""

from .arena import ArenaPlan, plan_arena, tensor_lifetimes
from .builder import ModelBuilder
from .interpreter import Interpreter, KernelRegistry, reference_registry
from .model import Model, Operator
from .quantize import (
    QuantParams,
    multiply_by_quantized_multiplier,
    quantize_multiplier,
    requantize,
    rounding_divide_by_pot,
    saturating_rounding_doubling_high_mul,
)
from .serialize import dump_model, load_model, load_model_file, save_model
from .tensor import Tensor

__all__ = [
    "ArenaPlan",
    "Interpreter",
    "KernelRegistry",
    "Model",
    "ModelBuilder",
    "Operator",
    "QuantParams",
    "Tensor",
    "multiply_by_quantized_multiplier",
    "plan_arena",
    "quantize_multiplier",
    "reference_registry",
    "requantize",
    "rounding_divide_by_pot",
    "saturating_rounding_doubling_high_mul",
    "dump_model",
    "load_model",
    "load_model_file",
    "save_model",
    "tensor_lifetimes",
]
