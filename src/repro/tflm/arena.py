"""Tensor arena planner: TFLM's greedy memory planner.

TFLite Micro allocates every activation in a single static arena using a
greedy-by-size offset planner over tensor lifetimes.  The KWS study's
"much of this RAM is needed by TFLite Micro for working data" constraint
comes from this arena: on Fomu the arena plus the runtime must fit in
128 kB of SRAM, which is why code and weights were pushed to flash.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Allocation:
    tensor_name: str
    offset: int
    size: int
    first_use: int
    last_use: int

    @property
    def end(self):
        return self.offset + self.size


@dataclass
class ArenaPlan:
    allocations: list = field(default_factory=list)
    arena_bytes: int = 0

    def offset_of(self, tensor_name):
        for alloc in self.allocations:
            if alloc.tensor_name == tensor_name:
                return alloc.offset
        raise KeyError(tensor_name)

    @property
    def sum_of_sizes(self):
        return sum(a.size for a in self.allocations)

    @property
    def reuse_factor(self):
        """How much memory lifetime-sharing saved (>= 1.0)."""
        return self.sum_of_sizes / self.arena_bytes if self.arena_bytes else 1.0


def tensor_lifetimes(model):
    """(first_def, last_use) operator indices per non-constant tensor."""
    lifetimes = {}
    for name in model.input_names:
        lifetimes[name] = [0, 0]
    for index, op in enumerate(model.operators):
        for name in op.inputs:
            if model.tensor(name).is_constant:
                continue
            lifetimes.setdefault(name, [index, index])[1] = index
        for name in op.outputs:
            lifetimes.setdefault(name, [index, index])[1] = index
    for name in model.output_names:
        if name in lifetimes:
            lifetimes[name][1] = len(model.operators)
    return {name: tuple(span) for name, span in lifetimes.items()}


def plan_arena(model, alignment=16):
    """Greedy-by-size first-fit offset assignment (TFLM's algorithm)."""
    lifetimes = tensor_lifetimes(model)
    requests = sorted(
        ((model.tensor(name).bytes, name) for name in lifetimes),
        key=lambda pair: (-pair[0], pair[1]),
    )
    placed = []
    for size, name in requests:
        size = -(-size // alignment) * alignment
        first, last = lifetimes[name]
        overlapping = [
            alloc for alloc in placed
            if not (alloc.last_use < first or last < alloc.first_use)
        ]
        overlapping.sort(key=lambda alloc: alloc.offset)
        offset = 0
        for alloc in overlapping:
            if offset + size <= alloc.offset:
                break
            offset = max(offset, alloc.end)
        placed.append(Allocation(name, offset, size, first, last))
    arena_bytes = max((alloc.end for alloc in placed), default=0)
    placed.sort(key=lambda alloc: alloc.first_use)
    return ArenaPlan(allocations=placed, arena_bytes=arena_bytes)
