"""Audio feature frontend: MFCC pre-processing for keyword spotting.

The paper motivates full-stack evaluation because it "accounts for
end-to-end bottlenecks that may arise elsewhere in the stack (software
overheads, pre-processing, etc.) but are often ignored when designing in
isolation" (Section I).  For the KWS workload, that pre-processing is
the MFCC pipeline that turns 1 s of 16 kHz audio into the 49x10 feature
map DS-CNN consumes (the MLPerf Tiny / micro-speech frontend):

framing (30 ms window, 20 ms stride) -> Hann window -> 512-point real
FFT -> power spectrum -> 40-bin mel filterbank -> log -> DCT-II, keep
10 coefficients -> quantize to int8.

Numerics are float64 internally (the embedded implementation is
fixed-point; the spectral *shape* is what feeds the model), quantized
with the same affine scheme as every activation.  A cycle model for the
frontend is provided so end-to-end profiles include it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.cost import CostContext
from .quantize import QuantParams


@dataclass(frozen=True)
class MfccConfig:
    sample_rate_hz: int = 16_000
    window_ms: float = 30.0
    stride_ms: float = 20.0
    fft_size: int = 512
    mel_bins: int = 40
    dct_coefficients: int = 10
    mel_low_hz: float = 20.0
    mel_high_hz: float = 4_000.0

    @property
    def window_samples(self):
        return int(self.sample_rate_hz * self.window_ms / 1000)

    @property
    def stride_samples(self):
        return int(self.sample_rate_hz * self.stride_ms / 1000)

    def num_frames(self, num_samples):
        if num_samples < self.window_samples:
            return 0
        return 1 + (num_samples - self.window_samples) // self.stride_samples


def _hz_to_mel(hz):
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def _mel_to_hz(mel):
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filterbank(config):
    """(mel_bins, fft_size//2+1) triangular filter matrix."""
    num_bins = config.fft_size // 2 + 1
    freqs = np.linspace(0, config.sample_rate_hz / 2, num_bins)
    mel_points = np.linspace(_hz_to_mel(config.mel_low_hz),
                             _hz_to_mel(config.mel_high_hz),
                             config.mel_bins + 2)
    hz_points = _mel_to_hz(mel_points)
    bank = np.zeros((config.mel_bins, num_bins))
    for m in range(config.mel_bins):
        left, center, right = hz_points[m:m + 3]
        rising = (freqs - left) / max(center - left, 1e-9)
        falling = (right - freqs) / max(right - center, 1e-9)
        bank[m] = np.clip(np.minimum(rising, falling), 0.0, None)
    return bank


def dct_matrix(rows, cols):
    """Orthonormal DCT-II basis (rows x cols)."""
    n = np.arange(cols)
    k = np.arange(rows).reshape(-1, 1)
    basis = np.cos(np.pi * (2 * n + 1) * k / (2 * cols))
    basis[0] *= 1.0 / np.sqrt(2)
    return basis * np.sqrt(2.0 / cols)


def mfcc(audio, config=None):
    """MFCC features: (num_frames, dct_coefficients) float array.

    ``audio`` is int16 PCM or float in [-1, 1].
    """
    config = config or MfccConfig()
    audio = np.asarray(audio, dtype=np.float64)
    if audio.size and np.abs(audio).max() > 1.5:
        audio = audio / 32768.0  # int16 PCM
    frames = config.num_frames(audio.size)
    window = np.hanning(config.window_samples)
    bank = mel_filterbank(config)
    dct = dct_matrix(config.dct_coefficients, config.mel_bins)
    features = np.empty((frames, config.dct_coefficients))
    for index in range(frames):
        start = index * config.stride_samples
        frame = audio[start:start + config.window_samples] * window
        spectrum = np.fft.rfft(frame, n=config.fft_size)
        power = (spectrum.real ** 2 + spectrum.imag ** 2)
        mel_energies = bank @ power
        log_mel = np.log(mel_energies + 1e-6)
        features[index] = dct @ log_mel
    return features


def quantize_features(features, scale=0.6, zero_point=0):
    """int8 feature map shaped (1, frames, coefficients, 1) for DS-CNN."""
    params = QuantParams(scale=scale, zero_point=zero_point)
    q = params.quantize(features)
    return q.reshape(1, *features.shape, 1), params


def preprocess_audio(audio, config=None):
    """Full frontend: audio -> int8 (1, 49, 10, 1) DS-CNN input."""
    features = mfcc(audio, config)
    data, _ = quantize_features(features)
    return data


def frontend_cycles(system, config=None, num_samples=16_000):
    """Cycle cost of the frontend on a given system configuration.

    Fixed-point FFT butterflies, filterbank MACs, log via polynomial,
    and the small DCT.  On the Fomu baseline this is mul-heavy — another
    beneficiary of the *Fast Mult* step, which is exactly why end-to-end
    accounting matters.
    """
    config = config or MfccConfig()
    frames = config.num_frames(num_samples)
    n = config.fft_size
    butterflies = int(n / 2 * np.log2(n))
    num_bins = n // 2 + 1
    ctx = CostContext(system, code_section="kernel_text")
    per_frame_muls = (config.window_samples          # windowing
                      + 4 * butterflies              # complex FFT muls
                      + 2 * num_bins                 # power spectrum
                      + config.mel_bins * 24         # sparse filterbank
                      + config.mel_bins * 6          # log polynomial
                      + config.dct_coefficients * config.mel_bins)
    ctx.mul(frames * per_frame_muls)
    ctx.alu(frames * (6 * butterflies + 4 * num_bins + 30 * config.mel_bins))
    ctx.load(frames * (2 * config.window_samples + 4 * butterflies),
             size=2, section="arena", pattern="seq",
             footprint=4 * config.fft_size)
    ctx.store(frames * (config.mel_bins + config.dct_coefficients),
              size=2, section="arena")
    ctx.branch(frames * (butterflies + config.mel_bins), taken=0.9)
    ctx.call(frames * 4)
    return ctx.finish(loop_footprint_bytes=1400)


def frontend_cycles_with_cfu(system, config=None, num_samples=16_000):
    """Frontend cycles with the CFU3 FFT-butterfly unit attached.

    The next turn of the deploy-profile-optimize loop (see
    :mod:`repro.accel.audio`): each radix-2 butterfly becomes two
    pipelined custom instructions (BFLY + GET_Y1) instead of four
    multiplies plus adds; windowing and the filterbank ride the CMUL op.
    """
    config = config or MfccConfig()
    frames = config.num_frames(num_samples)
    n = config.fft_size
    butterflies = int(n / 2 * np.log2(n))
    num_bins = n // 2 + 1
    ctx = CostContext(system, code_section="kernel_text")
    per_frame_cfu = (butterflies * 2          # BFLY + GET_Y1
                     + butterflies // 4       # twiddle updates (per group)
                     + config.window_samples  # windowing via CMUL
                     + config.mel_bins * 12)  # filterbank via CMUL lane
    ctx.cfu(frames * per_frame_cfu, latency=2, ii=1)
    # Power spectrum + log + DCT remain on the CPU.
    ctx.mul(frames * (2 * num_bins + config.mel_bins * 6
                      + config.dct_coefficients * config.mel_bins))
    ctx.alu(frames * (2 * butterflies + 3 * num_bins + 24 * config.mel_bins))
    ctx.load(frames * (2 * config.window_samples + 2 * butterflies),
             size=4, section="arena", pattern="seq",
             footprint=4 * config.fft_size)
    ctx.store(frames * (2 * butterflies // 2 + config.mel_bins
                        + config.dct_coefficients), size=4, section="arena")
    ctx.branch(frames * (butterflies / 2 + config.mel_bins), taken=0.9)
    ctx.call(frames * 4)
    return ctx.finish(loop_footprint_bytes=900)
