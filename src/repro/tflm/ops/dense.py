"""Reference int8 FULLY_CONNECTED kernel (TFLite semantics)."""

from __future__ import annotations

import numpy as np

from ..quantize import requantize


def fully_connected_accumulate(input_data, input_zero_point, weights):
    """Raw int32 accumulators: ``weights`` is (out_features, in_features)."""
    flat = input_data.reshape(input_data.shape[0], -1).astype(np.int64)
    flat = flat - int(input_zero_point)
    return flat @ weights.astype(np.int64).T


def fully_connected_reference(input_data, input_zero_point, weights, bias,
                              out_multiplier, out_shift, output_zero_point,
                              activation_min=-128, activation_max=127):
    acc = fully_connected_accumulate(input_data, input_zero_point, weights)
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64)
    return requantize(
        acc, out_multiplier, out_shift, output_zero_point,
        activation_min, activation_max,
    )


def fully_connected_macs(input_shape, weights_shape):
    batch = input_shape[0]
    out_features, in_features = weights_shape
    return batch * out_features * in_features
