"""Reference int8 elementwise kernels: ADD (TFLite broadcast-free form)."""

from __future__ import annotations

import numpy as np

from ..quantize import multiply_by_quantized_multiplier, quantize_multiplier

_LEFT_SHIFT = 20  # TFLM's kLeftShift for int8 ADD


def add_parameters(scale1, zero1, scale2, zero2, scale_out, zero_out):
    """Precompute the TFLM int8 ADD multipliers (done at Prepare time)."""
    twice_max = 2.0 * max(scale1, scale2)
    m1, s1 = quantize_multiplier(scale1 / twice_max)
    m2, s2 = quantize_multiplier(scale2 / twice_max)
    mo, so = quantize_multiplier(twice_max / ((1 << _LEFT_SHIFT) * scale_out))
    return {
        "input1_multiplier": m1, "input1_shift": s1, "input1_zero_point": zero1,
        "input2_multiplier": m2, "input2_shift": s2, "input2_zero_point": zero2,
        "output_multiplier": mo, "output_shift": so, "output_zero_point": zero_out,
    }


def add_reference(input1, input2, params, activation_min=-128, activation_max=127):
    """TFLM int8 ADD: rescale both inputs to a shared domain, sum, requantize."""
    x1 = (np.asarray(input1, dtype=np.int64) - params["input1_zero_point"]) << _LEFT_SHIFT
    x2 = (np.asarray(input2, dtype=np.int64) - params["input2_zero_point"]) << _LEFT_SHIFT
    scaled1 = multiply_by_quantized_multiplier(
        x1, params["input1_multiplier"], params["input1_shift"]
    )
    scaled2 = multiply_by_quantized_multiplier(
        x2, params["input2_multiplier"], params["input2_shift"]
    )
    raw = scaled1 + scaled2
    out = multiply_by_quantized_multiplier(
        raw, params["output_multiplier"], params["output_shift"]
    ) + params["output_zero_point"]
    return np.clip(out, activation_min, activation_max).astype(np.int8)
