"""Reference int8 DEPTHWISE_CONV_2D kernel (TFLite semantics)."""

from __future__ import annotations

import numpy as np

from ..quantize import requantize
from .conv import pad_input


def depthwise_accumulate(input_data, input_zero_point, filters, stride,
                         padding, depth_multiplier=1):
    """Raw int32 accumulators of a depthwise conv.

    ``filters`` has TFLite layout (1, KH, KW, in_channels * multiplier).
    Output channel ``c * multiplier + m`` convolves input channel ``c``
    with filter plane ``c * multiplier + m``.
    """
    _, kh, kw, out_ch = filters.shape
    n, _, _, in_ch = input_data.shape
    if out_ch != in_ch * depth_multiplier:
        raise ValueError("filter channels != in_channels * depth_multiplier")
    padded, (oh, ow) = pad_input(
        input_data, (kh, kw), stride, padding, pad_value=input_zero_point
    )
    sh, sw = stride
    acc = np.zeros((n, oh, ow, out_ch), dtype=np.int64)
    centered = padded.astype(np.int64) - int(input_zero_point)
    weights = filters[0].astype(np.int64)  # (KH, KW, out_ch)
    for ky in range(kh):
        for kx in range(kw):
            block = centered[:, ky:ky + oh * sh:sh, kx:kx + ow * sw:sw, :]
            if depth_multiplier != 1:
                block = np.repeat(block, depth_multiplier, axis=-1)
            acc += block * weights[ky, kx]
    return acc


def depthwise_reference(input_data, input_zero_point, filters, bias, stride,
                        padding, out_multipliers, out_shifts,
                        output_zero_point, depth_multiplier=1,
                        activation_min=-128, activation_max=127):
    acc = depthwise_accumulate(
        input_data, input_zero_point, filters, stride, padding, depth_multiplier
    )
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64)
    return requantize(
        acc, out_multipliers, out_shifts, output_zero_point,
        activation_min, activation_max,
    )


def depthwise_macs(input_shape, filters_shape, stride, padding):
    n, h, w, _ = input_shape
    _, kh, kw, out_ch = filters_shape
    if padding == "same":
        oh, ow = -(-h // stride[0]), -(-w // stride[1])
    else:
        oh = (h - kh) // stride[0] + 1
        ow = (w - kw) // stride[1] + 1
    return n * oh * ow * out_ch * kh * kw
