"""Reference int8 CONV_2D kernel (TFLite semantics, NHWC layout).

This is the generalized kernel the paper's case study begins from: it
handles any filter size, stride, and padding.  The optimized/specialized
variants (1x1 fast path, CFU-accelerated forms) live in
:mod:`repro.kernels` and are validated against this reference.
"""

from __future__ import annotations

import numpy as np

from ..quantize import requantize


def pad_input(input_data, kernel_hw, stride_hw, padding, pad_value):
    """Apply TFLite SAME/VALID padding; returns (padded, (oh, ow))."""
    n, h, w, c = input_data.shape
    kh, kw = kernel_hw
    sh, sw = stride_hw
    if padding == "valid":
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        return input_data, (oh, ow)
    if padding != "same":
        raise ValueError(f"unknown padding {padding!r}")
    oh = -(-h // sh)
    ow = -(-w // sw)
    pad_h = max(0, (oh - 1) * sh + kh - h)
    pad_w = max(0, (ow - 1) * sw + kw - w)
    top, left = pad_h // 2, pad_w // 2
    padded = np.full(
        (n, h + pad_h, w + pad_w, c), pad_value, dtype=input_data.dtype
    )
    padded[:, top:top + h, left:left + w, :] = input_data
    return padded, (oh, ow)


def extract_patches(padded, kernel_hw, stride_hw, out_hw):
    """im2col: (N, OH, OW, KH*KW*C) patches as int64."""
    n, _, _, c = padded.shape
    kh, kw = kernel_hw
    sh, sw = stride_hw
    oh, ow = out_hw
    patches = np.empty((n, oh, ow, kh * kw * c), dtype=np.int64)
    for ky in range(kh):
        for kx in range(kw):
            block = padded[:, ky:ky + oh * sh:sh, kx:kx + ow * sw:sw, :]
            start = (ky * kw + kx) * c
            patches[:, :, :, start:start + c] = block
    return patches


def conv2d_accumulate(input_data, input_zero_point, filters, stride, padding):
    """Raw int32 accumulators of a conv (before bias/requantization).

    ``filters`` has TFLite layout (out_channels, KH, KW, in_channels).
    Padded elements contribute zero because padding uses the input zero
    point and the kernel subtracts it before multiplying.
    """
    out_ch, kh, kw, in_ch = filters.shape
    padded, out_hw = pad_input(
        input_data, (kh, kw), stride, padding, pad_value=input_zero_point
    )
    patches = extract_patches(padded, (kh, kw), stride, out_hw)
    patches = patches - int(input_zero_point)
    weights = filters.reshape(out_ch, -1).astype(np.int64)
    return patches @ weights.T  # (N, OH, OW, out_ch)


def conv2d_reference(input_data, input_zero_point, filters, bias, stride,
                     padding, out_multipliers, out_shifts, output_zero_point,
                     activation_min=-128, activation_max=127):
    """Full int8 CONV_2D: accumulate, add bias, requantize, clamp."""
    acc = conv2d_accumulate(input_data, input_zero_point, filters, stride, padding)
    if bias is not None:
        acc = acc + np.asarray(bias, dtype=np.int64)
    return requantize(
        acc, out_multipliers, out_shifts, output_zero_point,
        activation_min, activation_max,
    )


def conv2d_macs(input_shape, filters_shape, stride, padding):
    """Multiply-accumulate count of one conv layer."""
    n, h, w, _ = input_shape
    out_ch, kh, kw, in_ch = filters_shape
    if padding == "same":
        oh, ow = -(-h // stride[0]), -(-w // stride[1])
    else:
        oh = (h - kh) // stride[0] + 1
        ow = (w - kw) // stride[1] + 1
    return n * oh * ow * out_ch * kh * kw * in_ch
