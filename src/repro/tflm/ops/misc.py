"""Reference kernels: SOFTMAX, RESHAPE, PAD, MEAN.

Softmax deviates from TFLM's table-driven fixed-point exponential: it
computes in float64 and quantizes to the standard (1/256, -128) output
quantization.  The deviation is deterministic, affects no measured
experiment (softmax is a negligible fraction of every workload here),
and is documented in DESIGN.md's substitution table.
"""

from __future__ import annotations

import numpy as np


def softmax_reference(input_data, input_scale, output_scale=1.0 / 256,
                      output_zero_point=-128):
    x = np.asarray(input_data, dtype=np.float64) * float(input_scale)
    x = x - x.max(axis=-1, keepdims=True)
    e = np.exp(x)
    probs = e / e.sum(axis=-1, keepdims=True)
    q = np.round(probs / output_scale) + output_zero_point
    return np.clip(q, -128, 127).astype(np.int8)


def reshape_reference(input_data, new_shape):
    return np.asarray(input_data).reshape(new_shape)


def pad_reference(input_data, paddings, pad_value):
    paddings = [(int(lo), int(hi)) for lo, hi in paddings]
    return np.pad(
        np.asarray(input_data), paddings, mode="constant",
        constant_values=int(pad_value),
    )


def mean_reference(input_data, axes, keepdims=True,
                   activation_min=-128, activation_max=127):
    """MEAN over spatial axes with round-half-away-from-zero (TFLM)."""
    data = np.asarray(input_data, dtype=np.int64)
    count = 1
    for axis in axes:
        count *= data.shape[axis]
    total = data.sum(axis=tuple(axes), keepdims=keepdims)
    rounded = np.where(
        total >= 0, (total + count // 2) // count, -((-total + count // 2) // count)
    )
    return np.clip(rounded, activation_min, activation_max).astype(np.int8)
