"""Reference int8 pooling kernels (TFLite semantics).

Average pooling keeps input quantization (TFLite requires matching
input/output scales), summing in int32 and rounding half away from zero.
"""

from __future__ import annotations

import numpy as np

from .conv import pad_input


def _windows(input_data, pool_hw, stride_hw, padding, pad_value):
    padded, (oh, ow) = pad_input(input_data, pool_hw, stride_hw, padding, pad_value)
    ph, pw = pool_hw
    sh, sw = stride_hw
    n, _, _, c = padded.shape
    stack = np.empty((ph * pw, n, oh, ow, c), dtype=np.int64)
    for ky in range(ph):
        for kx in range(pw):
            stack[ky * pw + kx] = padded[:, ky:ky + oh * sh:sh, kx:kx + ow * sw:sw, :]
    return stack


def average_pool_reference(input_data, pool_size, stride, padding="valid",
                           activation_min=-128, activation_max=127):
    stack = _windows(input_data, pool_size, stride, padding, pad_value=0)
    total = stack.sum(axis=0)
    count = pool_size[0] * pool_size[1]
    # Round half away from zero, like TFLM's AveragePool.
    rounded = np.where(
        total >= 0, (total + count // 2) // count, -((-total + count // 2) // count)
    )
    return np.clip(rounded, activation_min, activation_max).astype(np.int8)


def max_pool_reference(input_data, pool_size, stride, padding="valid",
                       activation_min=-128, activation_max=127):
    stack = _windows(input_data, pool_size, stride, padding, pad_value=-128)
    result = stack.max(axis=0)
    return np.clip(result, activation_min, activation_max).astype(np.int8)
