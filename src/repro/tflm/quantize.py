"""TFLite-exact fixed-point quantization arithmetic.

These functions are bit-exact ports of the gemmlowp/TFLite Micro
reference routines (``SaturatingRoundingDoublingHighMul``,
``RoundingDivideByPOT``, ``MultiplyByQuantizedMultiplier``,
``QuantizeMultiplier``).  Every quantized kernel in the framework —
reference or CFU-accelerated — funnels through this module, so software
emulation, gateware models, and golden tests all agree on the numerics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization: ``real = scale * (q - zero_point)``."""

    scale: float
    zero_point: int = 0

    def quantize(self, real, dtype=np.int8):
        info = np.iinfo(dtype)
        q = np.round(np.asarray(real, dtype=np.float64) / self.scale) + self.zero_point
        return np.clip(q, info.min, info.max).astype(dtype)

    def dequantize(self, q):
        return (np.asarray(q, dtype=np.float64) - self.zero_point) * self.scale


def saturating_rounding_doubling_high_mul(a, b):
    """gemmlowp SRDHM on int32 inputs (arrays or scalars)."""
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    overflow = (a64 == INT32_MIN) & (b64 == INT32_MIN)
    ab = a64 * b64
    nudge = np.where(ab >= 0, 1 << 30, 1 - (1 << 30))
    result = (ab + nudge) >> 31
    result = np.where(overflow, INT32_MAX, result)
    return result.astype(np.int64)


def rounding_divide_by_pot(x, exponent):
    """gemmlowp RoundingDivideByPOT (round half away from zero).

    ``exponent`` may be a scalar or an array broadcast against ``x``
    (an exponent of 0 falls out of the mask arithmetic as identity).
    """
    x = np.asarray(x, dtype=np.int64)
    exponent = np.asarray(exponent, dtype=np.int64)
    if exponent.ndim == 0 and int(exponent) == 0:
        return x
    mask = (np.int64(1) << exponent) - 1
    remainder = x & mask
    threshold = (mask >> 1) + (x < 0).astype(np.int64)
    return (x >> exponent) + (remainder > threshold).astype(np.int64)


def multiply_by_quantized_multiplier(x, quantized_multiplier, shift):
    """TFLM MultiplyByQuantizedMultiplier: x * multiplier * 2^shift.

    All three arguments may be scalars or mutually-broadcastable arrays
    (e.g. per-channel multiplier/shift against ``(..., channels)``
    accumulators).
    """
    shift = np.asarray(shift, dtype=np.int64)
    left_shift = np.where(shift > 0, shift, 0)
    right_shift = np.where(shift < 0, -shift, 0)
    shifted = np.asarray(x, dtype=np.int64) << left_shift
    high = saturating_rounding_doubling_high_mul(shifted, quantized_multiplier)
    return rounding_divide_by_pot(high, right_shift)


def quantize_multiplier(real_multiplier):
    """Decompose a real multiplier into (int32 mantissa, shift exponent)."""
    if real_multiplier == 0.0:
        return 0, 0
    mantissa, exponent = math.frexp(real_multiplier)
    q = int(round(mantissa * (1 << 31)))
    if q == (1 << 31):
        q //= 2
        exponent += 1
    if q < INT32_MIN or q > INT32_MAX:
        raise ValueError(f"multiplier {real_multiplier} out of range")
    return q, exponent


def output_multipliers(input_scale, filter_scales, output_scale):
    """Per-channel (multiplier, shift) pairs for conv/fc requantization."""
    filter_scales = np.atleast_1d(np.asarray(filter_scales, dtype=np.float64))
    mults, shifts = [], []
    for fscale in filter_scales:
        real = float(input_scale) * float(fscale) / float(output_scale)
        mult, shift = quantize_multiplier(real)
        mults.append(mult)
        shifts.append(shift)
    return np.asarray(mults, dtype=np.int64), np.asarray(shifts, dtype=np.int64)


def requantize(acc, multiplier, shift, output_zero_point,
               activation_min=-128, activation_max=127):
    """Bias-added accumulators -> int8 outputs, per TFLM semantics.

    ``multiplier``/``shift`` may be scalars or per-channel arrays
    broadcast over the last axis of ``acc``.
    """
    acc = np.asarray(acc, dtype=np.int64)
    multiplier = np.asarray(multiplier, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    # Per-channel multiplier/shift broadcast over the last axis of acc;
    # scalars broadcast over everything.  One vectorized pass either way.
    scaled = multiply_by_quantized_multiplier(acc, multiplier, shift)
    out = scaled + output_zero_point
    return np.clip(out, activation_min, activation_max).astype(np.int8)


def choose_quant_params(real_min, real_max, dtype=np.int8):
    """Pick (scale, zero_point) covering [real_min, real_max], nudged so
    zero is exactly representable (TFLite's requirement)."""
    info = np.iinfo(dtype)
    real_min = min(0.0, float(real_min))
    real_max = max(0.0, float(real_max))
    if real_min == real_max:
        return QuantParams(scale=1.0, zero_point=0)
    scale = (real_max - real_min) / (info.max - info.min)
    zero_point = int(round(info.min - real_min / scale))
    zero_point = max(info.min, min(info.max, zero_point))
    return QuantParams(scale=scale, zero_point=zero_point)
