"""Self-calibrating quantized model builder.

Builds int8 models layer by layer.  A deterministic sample activation is
propagated through every layer as it is added; each layer's output
quantization is calibrated from the sample's accumulator range, exactly
like post-training quantization calibrates from representative data.
All requantization multipliers are frozen into the operator parameters
(the TFLM Prepare step), so interpretation is integer-only.
"""

from __future__ import annotations

import numpy as np

from .model import Model, Operator
from .ops import conv as conv_ops
from .ops import dense as dense_ops
from .ops import depthwise as dw_ops
from .ops import elementwise as ew_ops
from .ops import misc as misc_ops
from .ops import pooling as pool_ops
from .quantize import QuantParams, output_multipliers
from .tensor import Tensor


class ModelBuilder:
    """Incremental builder; ``tip`` tracks the most recent activation."""

    def __init__(self, name, seed=0):
        self.name = name
        self.seed = seed
        self.tensors = {}
        self.operators = []
        self.samples = {}       # tensor name -> int8 sample data
        self.tip = None         # name of the current activation tensor
        self.input_names = []
        self._counter = 0

    # --- internals ---------------------------------------------------------------
    def _rng(self):
        self._counter += 1
        return np.random.default_rng(self.seed * 7919 + self._counter)

    def _unique(self, prefix):
        return f"{prefix}_{len(self.operators)}"

    def _add_tensor(self, tensor, sample=None):
        if tensor.name in self.tensors:
            raise ValueError(f"duplicate tensor {tensor.name}")
        self.tensors[tensor.name] = tensor
        if sample is not None:
            self.samples[tensor.name] = sample
        return tensor

    def _const(self, name, data, dtype, quant=None, channel_scales=None):
        tensor = Tensor(
            name=name, shape=data.shape, dtype=dtype,
            quant=quant or QuantParams(1.0, 0),
            channel_scales=channel_scales, data=data, is_constant=True,
        )
        return self._add_tensor(tensor)

    def _calibrate_output(self, acc_real, relu):
        """Choose output quantization from real-valued sample accumulators."""
        max_abs = float(np.max(np.abs(acc_real))) or 1.0
        if relu:
            # Post-ReLU range is [0, max]; use the full int8 span.
            scale = max(float(acc_real.max()), 1e-6) / 255.0
            zero_point = -128
        else:
            scale = max_abs / 127.0
            zero_point = 0
        return QuantParams(scale=scale, zero_point=zero_point)

    def _finish_op(self, opcode, op_name, inputs, out_tensor, params, sample):
        self._add_tensor(out_tensor, sample)
        self.operators.append(Operator(
            opcode=opcode, name=op_name, inputs=inputs,
            outputs=[out_tensor.name], params=params,
        ))
        self.tip = out_tensor.name
        return self

    def _tip_tensor(self):
        return self.tensors[self.tip]

    # --- layers --------------------------------------------------------------------
    def input(self, shape, scale=1.0 / 128, zero_point=0, name="input"):
        rng = self._rng()
        sample = rng.integers(-128, 128, size=shape, dtype=np.int64).astype(np.int8)
        tensor = Tensor(name=name, shape=shape, quant=QuantParams(scale, zero_point))
        self._add_tensor(tensor, sample)
        self.input_names.append(name)
        self.tip = name
        return self

    def conv2d(self, out_channels, kernel, stride=(1, 1), padding="same",
               relu=True, name=None):
        if isinstance(kernel, int):
            kernel = (kernel, kernel)
        if isinstance(stride, int):
            stride = (stride, stride)
        in_tensor = self._tip_tensor()
        in_ch = in_tensor.shape[-1]
        rng = self._rng()
        op_name = name or self._unique("conv2d")

        fan_in = kernel[0] * kernel[1] * in_ch
        filters = rng.integers(-127, 128,
                               size=(out_channels, *kernel, in_ch)).astype(np.int8)
        w_scale = 1.0 / (127.0 * np.sqrt(fan_in))
        channel_scales = np.full(out_channels, w_scale)
        weights_t = self._const(f"{op_name}_filters", filters, np.int8,
                                channel_scales=channel_scales)
        bias = rng.integers(-fan_in * 4, fan_in * 4, size=out_channels)
        bias = bias.astype(np.int64)
        bias_t = self._const(f"{op_name}_bias", bias, np.int32)

        sample_in = self.samples[self.tip]
        acc = conv_ops.conv2d_accumulate(
            sample_in, in_tensor.quant.zero_point, filters, stride, padding
        ) + bias
        acc_real = acc * (in_tensor.quant.scale * channel_scales)
        out_quant = self._calibrate_output(acc_real, relu)
        mults, shifts = output_multipliers(
            in_tensor.quant.scale, channel_scales, out_quant.scale
        )
        act_min = out_quant.zero_point if relu else -128
        params = {
            "stride": stride, "padding": padding,
            "out_multipliers": mults, "out_shifts": shifts,
            "activation_min": act_min, "activation_max": 127,
            "macs": conv_ops.conv2d_macs(in_tensor.shape, filters.shape,
                                         stride, padding),
            "kernel": kernel,
        }
        sample_out = conv_ops.conv2d_reference(
            sample_in, in_tensor.quant.zero_point, filters, bias, stride,
            padding, mults, shifts, out_quant.zero_point, act_min, 127,
        )
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=out_quant)
        return self._finish_op(
            "CONV_2D", op_name,
            [self.tip, weights_t.name, bias_t.name],
            out_tensor, params, sample_out,
        )

    def depthwise_conv2d(self, kernel=(3, 3), stride=(1, 1), padding="same",
                         depth_multiplier=1, relu=True, name=None):
        if isinstance(kernel, int):
            kernel = (kernel, kernel)
        if isinstance(stride, int):
            stride = (stride, stride)
        in_tensor = self._tip_tensor()
        in_ch = in_tensor.shape[-1]
        out_ch = in_ch * depth_multiplier
        rng = self._rng()
        op_name = name or self._unique("dwconv")

        fan_in = kernel[0] * kernel[1]
        filters = rng.integers(-127, 128,
                               size=(1, *kernel, out_ch)).astype(np.int8)
        w_scale = 1.0 / (127.0 * np.sqrt(fan_in))
        channel_scales = np.full(out_ch, w_scale)
        weights_t = self._const(f"{op_name}_filters", filters, np.int8,
                                channel_scales=channel_scales)
        bias = rng.integers(-fan_in * 4, fan_in * 4, size=out_ch).astype(np.int64)
        bias_t = self._const(f"{op_name}_bias", bias, np.int32)

        sample_in = self.samples[self.tip]
        acc = dw_ops.depthwise_accumulate(
            sample_in, in_tensor.quant.zero_point, filters, stride, padding,
            depth_multiplier,
        ) + bias
        acc_real = acc * (in_tensor.quant.scale * channel_scales)
        out_quant = self._calibrate_output(acc_real, relu)
        mults, shifts = output_multipliers(
            in_tensor.quant.scale, channel_scales, out_quant.scale
        )
        act_min = out_quant.zero_point if relu else -128
        params = {
            "stride": stride, "padding": padding,
            "depth_multiplier": depth_multiplier,
            "out_multipliers": mults, "out_shifts": shifts,
            "activation_min": act_min, "activation_max": 127,
            "macs": dw_ops.depthwise_macs(in_tensor.shape, filters.shape,
                                          stride, padding),
            "kernel": kernel,
        }
        sample_out = dw_ops.depthwise_reference(
            sample_in, in_tensor.quant.zero_point, filters, bias, stride,
            padding, mults, shifts, out_quant.zero_point, depth_multiplier,
            act_min, 127,
        )
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=out_quant)
        return self._finish_op(
            "DEPTHWISE_CONV_2D", op_name,
            [self.tip, weights_t.name, bias_t.name],
            out_tensor, params, sample_out,
        )

    def fully_connected(self, units, relu=False, name=None):
        in_tensor = self._tip_tensor()
        in_features = in_tensor.num_elements // in_tensor.shape[0]
        rng = self._rng()
        op_name = name or self._unique("fc")

        weights = rng.integers(-127, 128, size=(units, in_features)).astype(np.int8)
        w_scale = 1.0 / (127.0 * np.sqrt(in_features))
        weights_t = self._const(
            f"{op_name}_weights", weights, np.int8,
            quant=QuantParams(w_scale, 0),
        )
        bias = rng.integers(-in_features, in_features, size=units).astype(np.int64)
        bias_t = self._const(f"{op_name}_bias", bias, np.int32)

        sample_in = self.samples[self.tip]
        acc = dense_ops.fully_connected_accumulate(
            sample_in, in_tensor.quant.zero_point, weights
        ) + bias
        acc_real = acc * (in_tensor.quant.scale * w_scale)
        out_quant = self._calibrate_output(acc_real, relu)
        from .quantize import quantize_multiplier

        mult, shift = quantize_multiplier(
            in_tensor.quant.scale * w_scale / out_quant.scale
        )
        act_min = out_quant.zero_point if relu else -128
        params = {
            "out_multiplier": mult, "out_shift": shift,
            "activation_min": act_min, "activation_max": 127,
            "macs": dense_ops.fully_connected_macs(
                (in_tensor.shape[0], in_features), weights.shape
            ),
        }
        sample_out = dense_ops.fully_connected_reference(
            sample_in, in_tensor.quant.zero_point, weights, bias, mult, shift,
            out_quant.zero_point, act_min, 127,
        )
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=out_quant)
        return self._finish_op(
            "FULLY_CONNECTED", op_name,
            [self.tip, weights_t.name, bias_t.name],
            out_tensor, params, sample_out,
        )

    def average_pool(self, pool_size=None, stride=None, padding="valid",
                     name=None):
        in_tensor = self._tip_tensor()
        if pool_size is None:  # global average pool
            pool_size = (in_tensor.shape[1], in_tensor.shape[2])
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        stride = stride or pool_size
        if isinstance(stride, int):
            stride = (stride, stride)
        op_name = name or self._unique("avgpool")
        sample_out = pool_ops.average_pool_reference(
            self.samples[self.tip], pool_size, stride, padding
        )
        params = {"pool_size": pool_size, "stride": stride, "padding": padding,
                  "macs": 0}
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=in_tensor.quant)
        return self._finish_op("AVERAGE_POOL_2D", op_name, [self.tip],
                               out_tensor, params, sample_out)

    def max_pool(self, pool_size, stride=None, padding="valid", name=None):
        in_tensor = self._tip_tensor()
        if isinstance(pool_size, int):
            pool_size = (pool_size, pool_size)
        stride = stride or pool_size
        if isinstance(stride, int):
            stride = (stride, stride)
        op_name = name or self._unique("maxpool")
        sample_out = pool_ops.max_pool_reference(
            self.samples[self.tip], pool_size, stride, padding
        )
        params = {"pool_size": pool_size, "stride": stride, "padding": padding,
                  "macs": 0}
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=in_tensor.quant)
        return self._finish_op("MAX_POOL_2D", op_name, [self.tip],
                               out_tensor, params, sample_out)

    def add(self, other_name, relu=False, name=None):
        """Residual add of the current tip with an earlier tensor."""
        in1 = self._tip_tensor()
        in2 = self.tensors[other_name]
        if in1.shape != in2.shape:
            raise ValueError(f"ADD shape mismatch {in1.shape} vs {in2.shape}")
        op_name = name or self._unique("add")
        s1 = self.samples[self.tip]
        s2 = self.samples[other_name]
        real = in1.quant.dequantize(s1) + in2.quant.dequantize(s2)
        out_quant = self._calibrate_output(real, relu)
        params = ew_ops.add_parameters(
            in1.quant.scale, in1.quant.zero_point,
            in2.quant.scale, in2.quant.zero_point,
            out_quant.scale, out_quant.zero_point,
        )
        act_min = out_quant.zero_point if relu else -128
        params.update({"activation_min": act_min, "activation_max": 127,
                       "macs": 0})
        sample_out = ew_ops.add_reference(s1, s2, params, act_min, 127)
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=out_quant)
        return self._finish_op("ADD", op_name, [self.tip, other_name],
                               out_tensor, params, sample_out)

    def reshape(self, new_shape, name=None):
        in_tensor = self._tip_tensor()
        op_name = name or self._unique("reshape")
        sample_out = misc_ops.reshape_reference(self.samples[self.tip], new_shape)
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=in_tensor.quant)
        return self._finish_op("RESHAPE", op_name, [self.tip], out_tensor,
                               {"new_shape": tuple(new_shape), "macs": 0},
                               sample_out)

    def softmax(self, name=None):
        in_tensor = self._tip_tensor()
        op_name = name or self._unique("softmax")
        sample_out = misc_ops.softmax_reference(
            self.samples[self.tip], in_tensor.quant.scale
        )
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=QuantParams(1.0 / 256, -128))
        return self._finish_op("SOFTMAX", op_name, [self.tip], out_tensor,
                               {"input_scale": in_tensor.quant.scale, "macs": 0},
                               sample_out)

    def mean_hw(self, name=None):
        """Global spatial MEAN (keepdims), as MobileNetV2 uses pre-classifier."""
        in_tensor = self._tip_tensor()
        op_name = name or self._unique("mean")
        sample_out = misc_ops.mean_reference(self.samples[self.tip], (1, 2))
        out_tensor = Tensor(name=f"{op_name}_out", shape=sample_out.shape,
                            quant=in_tensor.quant)
        return self._finish_op("MEAN", op_name, [self.tip], out_tensor,
                               {"axes": (1, 2), "macs": 0}, sample_out)

    # --- finalization -----------------------------------------------------------------
    def build(self):
        return Model(
            name=self.name,
            tensors=self.tensors,
            operators=self.operators,
            input_names=self.input_names,
            output_names=[self.tip],
        )
