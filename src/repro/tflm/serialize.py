"""Model serialization: the ``.tflite`` flatbuffer stand-in.

CFU Playground deployments carry the model as constant data in the
binary image.  This module round-trips a quantized :class:`Model`
through a compact, self-describing binary container so models can be
stored beside a project, diffed, checksummed, and re-loaded without
rebuilding:

``REPRO_TFLM`` magic | version | JSON header (graph, quantization,
dtypes, shapes) | raw little-endian tensor payloads, 16-byte aligned.
"""

from __future__ import annotations

import io
import json

import numpy as np

from .model import Model, Operator
from .quantize import QuantParams
from .tensor import Tensor

MAGIC = b"REPRO_TFLM"
VERSION = 1
_ALIGN = 16

_DTYPES = {"int8": np.int8, "int16": np.int16, "int32": np.int32,
           "int64": np.int64, "uint8": np.uint8, "float32": np.float32}


def _encode_params(params):
    encoded = {}
    for key, value in params.items():
        if isinstance(value, np.ndarray):
            encoded[key] = {"__ndarray__": value.tolist(),
                            "dtype": str(value.dtype)}
        elif isinstance(value, tuple):
            encoded[key] = {"__tuple__": list(value)}
        elif isinstance(value, (np.integer,)):
            encoded[key] = int(value)
        elif isinstance(value, (np.floating,)):
            encoded[key] = float(value)
        else:
            encoded[key] = value
    return encoded


def _decode_params(params):
    decoded = {}
    for key, value in params.items():
        if isinstance(value, dict) and "__ndarray__" in value:
            decoded[key] = np.asarray(value["__ndarray__"],
                                      dtype=value["dtype"])
        elif isinstance(value, dict) and "__tuple__" in value:
            decoded[key] = tuple(value["__tuple__"])
        else:
            decoded[key] = value
    return decoded


def dump_model(model, stream=None):
    """Serialize a model; returns the bytes (also written to ``stream``)."""
    payloads = []
    offset = 0
    tensor_headers = {}
    for name, tensor in model.tensors.items():
        header = {
            "shape": list(tensor.shape),
            "dtype": np.dtype(tensor.dtype).name,
            "scale": tensor.quant.scale,
            "zero_point": tensor.quant.zero_point,
            "is_constant": tensor.is_constant,
        }
        if tensor.channel_scales is not None:
            header["channel_scales"] = [float(s) for s in tensor.channel_scales]
        if tensor.data is not None:
            blob = np.ascontiguousarray(tensor.data).tobytes()
            header["data_offset"] = offset
            header["data_bytes"] = len(blob)
            padding = (-len(blob)) % _ALIGN
            payloads.append(blob + b"\x00" * padding)
            offset += len(blob) + padding
        tensor_headers[name] = header

    header = {
        "name": model.name,
        "inputs": model.input_names,
        "outputs": model.output_names,
        "tensors": tensor_headers,
        "operators": [
            {"opcode": op.opcode, "name": op.name, "inputs": op.inputs,
             "outputs": op.outputs, "params": _encode_params(op.params)}
            for op in model.operators
        ],
    }
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(VERSION.to_bytes(2, "little"))
    out.write(len(header_blob).to_bytes(4, "little"))
    out.write(header_blob)
    padding = (-out.tell()) % _ALIGN
    out.write(b"\x00" * padding)
    for blob in payloads:
        out.write(blob)
    data = out.getvalue()
    if stream is not None:
        stream.write(data)
    return data


def load_model(data):
    """Deserialize bytes produced by :func:`dump_model`."""
    if isinstance(data, (io.IOBase,)):
        data = data.read()
    if not data.startswith(MAGIC):
        raise ValueError("not a REPRO_TFLM container")
    cursor = len(MAGIC)
    version = int.from_bytes(data[cursor:cursor + 2], "little")
    if version != VERSION:
        raise ValueError(f"unsupported container version {version}")
    cursor += 2
    header_len = int.from_bytes(data[cursor:cursor + 4], "little")
    cursor += 4
    header = json.loads(data[cursor:cursor + header_len].decode("utf-8"))
    cursor += header_len
    cursor += (-cursor) % _ALIGN
    payload_base = cursor

    tensors = {}
    for name, spec in header["tensors"].items():
        dtype = _DTYPES[spec["dtype"]]
        tensor = Tensor(
            name=name,
            shape=tuple(spec["shape"]),
            dtype=dtype,
            quant=QuantParams(spec["scale"], spec["zero_point"]),
            is_constant=spec["is_constant"],
        )
        if "channel_scales" in spec:
            tensor.channel_scales = np.asarray(spec["channel_scales"])
        if "data_offset" in spec:
            start = payload_base + spec["data_offset"]
            blob = data[start:start + spec["data_bytes"]]
            array = np.frombuffer(blob, dtype=dtype).reshape(spec["shape"])
            tensor.data = array.copy()
        tensors[name] = tensor

    operators = [
        Operator(opcode=spec["opcode"], name=spec["name"],
                 inputs=list(spec["inputs"]), outputs=list(spec["outputs"]),
                 params=_decode_params(spec["params"]))
        for spec in header["operators"]
    ]
    return Model(
        name=header["name"], tensors=tensors, operators=operators,
        input_names=header["inputs"], output_names=header["outputs"],
    )


def save_model(model, path):
    with open(path, "wb") as handle:
        dump_model(model, handle)
    return path


def load_model_file(path):
    with open(path, "rb") as handle:
        return load_model(handle.read())
