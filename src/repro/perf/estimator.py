"""Whole-model cycle estimation and the per-op profiler.

Combines a model, a :class:`~repro.perf.cost.SystemConfig`, and a
:class:`~repro.kernels.api.VariantSet` into the per-operator cycle
profile the paper's deploy-profile-optimize loop is driven by (the
on-board profiler's role, Section III "Profile" steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cost import CaptureCosts, CostContext


@dataclass
class OpCost:
    op_name: str
    opcode: str
    variant: str
    cycles: float
    macs: int
    breakdown: object = None      # CostBreakdown of the variant's context
    instructions: float = 0.0
    trace: tuple = ()             # CostContext primitive-call trace
    code_section: str = "kernel_text"
    loop_footprint_bytes: int = 256  # fetch-model footprint passed to finish()

    @property
    def cycles_per_mac(self):
        return self.cycles / self.macs if self.macs else float("nan")


@dataclass
class InferenceEstimate:
    """Per-op costs plus framework overhead for one inference."""

    model_name: str
    system: object
    op_costs: list = field(default_factory=list)
    overhead_cycles: float = 0.0
    overhead_trace: tuple = ()
    overhead_instructions: float = 0.0
    overhead_code_section: str = "text"
    overhead_loop_footprint_bytes: int = 48 * 1024

    @property
    def total_cycles(self):
        return sum(c.cycles for c in self.op_costs) + self.overhead_cycles

    @property
    def seconds(self):
        return self.total_cycles / self.system.clock_hz

    def by_opcode(self, split_conv_1x1=False):
        """Cycle totals per opcode (optionally splitting 1x1 CONV_2D out)."""
        totals = {}
        for cost in self.op_costs:
            key = cost.opcode
            if split_conv_1x1 and cost.opcode == "CONV_2D":
                key = "CONV_2D_1x1" if cost.op_name in self._names_1x1 else "CONV_2D_other"
            totals[key] = totals.get(key, 0.0) + cost.cycles
        if self.overhead_cycles:
            totals["(framework)"] = self.overhead_cycles
        return totals

    _names_1x1 = frozenset()

    def cycles_for(self, predicate):
        return sum(c.cycles for c in self.op_costs if predicate(c))

    def summary(self, split_conv_1x1=False):
        total = self.total_cycles
        lines = [
            f"{self.model_name}: {total:,.0f} cycles "
            f"({self.seconds * 1000:.1f} ms @ {self.system.clock_hz / 1e6:.0f} MHz)"
        ]
        for opcode, cycles in sorted(self.by_opcode(split_conv_1x1).items(),
                                     key=lambda kv: -kv[1]):
            lines.append(f"  {opcode:20s} {cycles:>14,.0f}  {100 * cycles / total:5.1f}%")
        return "\n".join(lines)

    def per_op_table(self):
        lines = [f"{'operator':30s} {'variant':18s} {'cycles':>14s} {'cyc/MAC':>8s}"]
        for cost in self.op_costs:
            per_mac = f"{cost.cycles_per_mac:.2f}" if cost.macs else "-"
            lines.append(
                f"{cost.op_name:30s} {cost.variant:18s} "
                f"{cost.cycles:>14,.0f} {per_mac:>8s}"
            )
        return "\n".join(lines)


class FrameworkOverhead:
    """TFLM runtime cost outside kernels: dispatch, setup, I/O staging.

    The runtime code lives in the ``text`` section, so on Fomu it
    executes from flash until the icache can hold it — part of why the
    memory-system optimizations in Section III-B pay off.
    """

    def __init__(self, per_op_instructions=900, per_invoke_instructions=30_000):
        self.per_op_instructions = per_op_instructions
        self.per_invoke_instructions = per_invoke_instructions

    def cycles(self, model, system):
        ctx = CostContext(system, code_section="text")
        total_instr = (self.per_invoke_instructions
                       + self.per_op_instructions * len(model.operators))
        ctx.alu(int(total_instr * 0.55))
        ctx.load(int(total_instr * 0.20), size=4, section="arena", pattern="rand",
                 footprint=8192)
        ctx.store(int(total_instr * 0.08), size=4, section="arena")
        ctx.branch(int(total_instr * 0.12), taken=0.5, predictable=False)
        ctx.call(int(total_instr * 0.05 / 2))
        # Framework code has a large footprint: it rarely fits small caches.
        return ctx.finish(loop_footprint_bytes=48 * 1024)


def estimate_inference(model, system, variants=None, overhead=None,
                       split_conv_1x1=True, tracer=None):
    """Estimate one inference; returns an :class:`InferenceEstimate`.

    With ``tracer`` (a :class:`~repro.core.tracing.Tracer`) the whole
    estimation is recorded as an ``estimate`` span carrying the model
    name and total cycles, and an ``op_estimated`` counter per operator.
    """
    from ..kernels.reference import reference_variants

    if tracer is not None:
        with tracer.span("estimate", model=model.name) as span:
            estimate = estimate_inference(model, system, variants=variants,
                                          overhead=overhead,
                                          split_conv_1x1=split_conv_1x1)
            tracer.count("op_estimated", len(estimate.op_costs))
            span.attrs["cycles"] = estimate.total_cycles
            return estimate

    variants = variants or reference_variants()
    overhead = overhead or FrameworkOverhead()
    estimate = InferenceEstimate(model_name=model.name, system=system)
    names_1x1 = set()
    for op in model.operators:
        variant = variants.select(op, model)
        if variant is None:
            raise KeyError(f"no variant for {op.opcode}")
        with CaptureCosts() as capture:
            cycles = variant.cycles(op, model, system)
        snap = capture.last
        estimate.op_costs.append(OpCost(
            op_name=op.name, opcode=op.opcode, variant=variant.name,
            cycles=cycles, macs=op.macs,
            breakdown=snap.breakdown if snap else None,
            instructions=snap.instructions if snap else 0.0,
            trace=snap.trace if snap else (),
            code_section=snap.code_section if snap else "kernel_text",
            loop_footprint_bytes=snap.loop_footprint_bytes if snap else 256,
        ))
        if op.opcode == "CONV_2D" and op.params.get("kernel") == (1, 1):
            names_1x1.add(op.name)
    with CaptureCosts() as capture:
        estimate.overhead_cycles = overhead.cycles(model, system)
    snap = capture.last
    estimate.overhead_trace = snap.trace if snap else ()
    estimate.overhead_instructions = snap.instructions if snap else 0.0
    estimate.overhead_code_section = snap.code_section if snap else "text"
    estimate.overhead_loop_footprint_bytes = (
        snap.loop_footprint_bytes if snap else 48 * 1024)
    estimate._names_1x1 = frozenset(names_1x1)
    return estimate
