"""Cortex-M4 + CMSIS-NN comparator: the paper's KWS reference point.

Section III-B frames the whole study against this target: "We started
with a baseline that was 75x slower than CMSIS-NN hand optimized
kernels for Arm Cortex-M CPUs.  The goal was to make the cycle count for
our implementation comparable to such optimized kernels", and closes
with "The final optimized Fomu KWS results, if normalized for the
differing clock rates, are roughly comparable to the MLPerf Tiny results
for the much more complex Cortex-M4 with hand-optimized CMSIS-NN kernels
utilizing the M4 SIMD instructions."

This module models that comparator: a Cortex-M4-class MCU (single-cycle
32x32 multiplier, SMLAD dual 16-bit MAC, zero-wait-state flash via a
prefetch accelerator) running CMSIS-NN's int8 kernels.  Instruction
mixes follow the published CMSIS-NN structure: ``arm_convolve_s8``
im2col + 2x2 register-blocked GEMM with SMLAD (2 MACs/instruction),
``arm_depthwise_conv_s8`` per-channel tap loops, and the shared
``arm_nn_requantize`` epilogue.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Representative MLPerf Tiny class device (e.g. STM32F4 at 120 MHz).
CORTEX_M4_CLOCK_HZ = 120_000_000


@dataclass(frozen=True)
class CmsisNnTiming:
    """Per-structure cycle coefficients for CMSIS-NN int8 kernels."""

    #: Inner-loop cycles per MAC for conv GEMM (SMLAD: 2 MACs/cycle, plus
    #: loads amortized over register blocking).
    conv_cycles_per_mac: float = 1.9
    #: im2col gather cost per patch byte.
    im2col_cycles_per_byte: float = 1.3
    #: Depthwise is less SIMD-friendly: per-MAC cost stays high.
    dw_cycles_per_mac: float = 4.4
    #: Fully-connected: SMLAD over contiguous vectors.
    fc_cycles_per_mac: float = 1.2
    #: arm_nn_requantize + clamp + store per output element.
    requantize_cycles: float = 9.0
    #: Pooling / elementwise per element.
    simple_op_cycles: float = 3.0
    #: Per-operator dispatch overhead.
    per_op_overhead: float = 2500.0
    #: Per-inference runtime overhead.
    per_invoke_overhead: float = 40_000.0


def cmsis_nn_cycles(model, timing=None):
    """Estimated Cortex-M4 cycles for one int8 inference of ``model``."""
    timing = timing or CmsisNnTiming()
    total = timing.per_invoke_overhead
    for op in model.operators:
        total += timing.per_op_overhead
        out_tensor = model.tensor(op.outputs[0])
        outputs = out_tensor.num_elements
        if op.opcode == "CONV_2D":
            kh, kw = op.params.get("kernel", (1, 1))
            in_ch = model.tensor(op.inputs[0]).shape[-1]
            patch_bytes = kh * kw * in_ch
            pixels = outputs // out_tensor.shape[-1]
            total += op.macs * timing.conv_cycles_per_mac
            if (kh, kw) != (1, 1):
                total += pixels * patch_bytes * timing.im2col_cycles_per_byte
            total += outputs * timing.requantize_cycles
        elif op.opcode == "DEPTHWISE_CONV_2D":
            total += op.macs * timing.dw_cycles_per_mac
            total += outputs * timing.requantize_cycles
        elif op.opcode == "FULLY_CONNECTED":
            total += op.macs * timing.fc_cycles_per_mac
            total += outputs * timing.requantize_cycles
        else:
            total += outputs * timing.simple_op_cycles
    return total


@dataclass
class ComparisonRow:
    name: str
    cycles: float
    clock_hz: float

    @property
    def latency_ms(self):
        return 1000 * self.cycles / self.clock_hz


def compare_with_cmsis_nn(model, fomu_cycles, fomu_clock_hz=12_000_000,
                          timing=None):
    """The paper's closing comparison, normalized for clock rate.

    Returns ``(fomu_row, m4_row, normalized_ratio)`` where the ratio is
    Fomu cycles / M4 cycles (clock-independent work comparison — the
    normalization the paper applies).
    """
    m4_cycles = cmsis_nn_cycles(model, timing)
    fomu = ComparisonRow("Fomu VexRiscv+CFU2", fomu_cycles, fomu_clock_hz)
    m4 = ComparisonRow("Cortex-M4 CMSIS-NN", m4_cycles, CORTEX_M4_CLOCK_HZ)
    return fomu, m4, fomu_cycles / m4_cycles
