"""Analytic cycle accounting for kernel loop nests.

Whole-model inference on the paper's platforms runs for 10^8-10^9
cycles — far beyond what a Python instruction-set simulator can step
through.  Instead, each kernel variant describes its loop nest by
calling the primitives of a :class:`CostContext` (so many ALU ops, loads
with a given locality, multiplies, CFU issues per iteration), and the
context converts the counts into cycles using the *same* unit costs as
the instruction-level :class:`~repro.cpu.timing.VexTiming` model.  Unit
tests cross-check the two on reduced shapes.

Every primitive also counts one fetched instruction; :meth:`finish`
converts the instruction total into fetch stalls based on where the code
lives (flash XIP vs SRAM) and the instruction cache — this is what makes
the KWS memory-system ladder (QuadSPI, sections-to-SRAM, larger icache)
fall out of the model mechanistically.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass

from ..cpu.timing import ITERATIVE_DIV_CYCLES, ITERATIVE_MUL_CYCLES, SOFT_DIV_CYCLES
from ..cpu.vexriscv import VexRiscvConfig
from .cache import expected_miss_rate
from .memories import MemoryMap

#: Average taken-branch rate of loop-closing branches.
_LOOP_TAKEN = 0.95


@dataclass
class SystemConfig:
    """Everything that determines cycle costs: CPU + memory + placement.

    ``placement`` maps linker sections to region names:

    - ``"text"``        — framework / runtime code (TFLM interpreter, libc)
    - ``"kernel_text"`` — the hot kernel loops (moved to SRAM in III-B)
    - ``"model_weights"`` — filter/bias constants (.rodata)
    - ``"arena"``       — activation arena (always RAM)
    """

    cpu: VexRiscvConfig
    memory_map: MemoryMap
    placement: dict
    clock_hz: int = 75_000_000
    line_bytes: int = 32

    def region(self, section):
        return self.memory_map.get(self.placement[section])

    def with_placement(self, **updates):
        placement = dict(self.placement)
        placement.update(updates)
        return SystemConfig(self.cpu, self.memory_map, placement,
                            self.clock_hz, self.line_bytes)

    def seconds(self, cycles):
        return cycles / self.clock_hz


@dataclass
class CostBreakdown:
    """Cycle totals by cause, for profiler reports."""

    compute: float = 0.0
    memory: float = 0.0
    fetch: float = 0.0
    cfu: float = 0.0
    control: float = 0.0

    @property
    def total(self):
        return self.compute + self.memory + self.fetch + self.cfu + self.control

    def __add__(self, other):
        return CostBreakdown(
            self.compute + other.compute, self.memory + other.memory,
            self.fetch + other.fetch, self.cfu + other.cfu,
            self.control + other.control,
        )


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable record of one finished :class:`CostContext`.

    ``finish()`` publishes one of these to the innermost active
    :class:`CaptureCosts` scope, which is how the estimator recovers the
    per-category split, the primitive trace, and the fetch-model inputs
    without changing the variant ``cycles()`` protocol.
    """

    breakdown: CostBreakdown
    instructions: float
    trace: tuple
    code_section: str
    loop_footprint_bytes: int


#: Innermost active capture scope.  A ``ContextVar`` (not a class/global
#: attribute) so concurrent estimates — asyncio tasks in the DSE/session
#: servers, worker threads — each see only their own finished contexts.
_ACTIVE_CAPTURE = contextvars.ContextVar("repro_cost_capture", default=None)


class CaptureCosts:
    """Context manager collecting every ``CostContext.finish()`` in scope.

    Usage::

        with CaptureCosts() as capture:
            cycles = variant.cycles(op, model, system)
        snapshot = capture.last   # CostSnapshot or None

    Scopes nest: an estimate running *inside* another capture scope (for
    example a nested ``estimate_inference`` call, or an interleaved
    request on another asyncio task) records into its own scope and never
    contaminates the outer one.
    """

    def __init__(self):
        self.snapshots = []
        self._token = None

    def __enter__(self):
        self._token = _ACTIVE_CAPTURE.set(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        _ACTIVE_CAPTURE.reset(self._token)
        self._token = None
        return False

    @property
    def last(self):
        """The most recent snapshot in this scope, or None."""
        return self.snapshots[-1] if self.snapshots else None


class CostContext:
    """Accumulates cycles for one kernel invocation."""

    def __init__(self, system, code_section="kernel_text"):
        self.system = system
        self.code_section = code_section
        self.instructions = 0.0
        self.breakdown = CostBreakdown()
        #: Primitive-call trace: one tuple per primitive invocation
        #: (``("mul", n)``, ``("load", n, size, section, pattern,
        #: footprint)``, ...).  The simulation-backed profiler
        #: (:mod:`repro.core.simprofile`) replays this trace as real
        #: RV32IM firmware to cross-validate the analytic model against
        #: the instruction-level simulator.  Soft-emulated primitives
        #: (mul without a multiplier) trace as their expansion.
        self.trace = []
        cpu = system.cpu
        # Interlock penalty folded in per instruction class: a CPU without
        # operand bypassing stalls on most back-to-back dependencies.
        self._dep_stall = 0.0 if cpu.bypassing else 2.0
        self._load_use = 0.5 if cpu.bypassing else 3.0

    # --- compute primitives ------------------------------------------------------
    def alu(self, n=1):
        self.trace.append(("alu", n))
        self.instructions += n
        self.breakdown.compute += n * (1 + self._dep_stall)

    def mul(self, n=1):
        cpu = self.system.cpu
        if cpu.multiplier == "single_cycle":
            per = 1
        elif cpu.multiplier == "iterative":
            per = ITERATIVE_MUL_CYCLES
        else:
            # No multiplier: ~40-instruction shift-add software emulation.
            self.alu(n * 40)
            self.branch(n * 8, taken=0.5, predictable=False)
            return
        self.trace.append(("mul", n))
        self.instructions += n
        self.breakdown.compute += n * (per + self._dep_stall)

    def div(self, n=1):
        cpu = self.system.cpu
        per = (ITERATIVE_DIV_CYCLES if cpu.divider == "iterative"
               else SOFT_DIV_CYCLES)
        self.trace.append(("div", n))
        self.instructions += n
        self.breakdown.compute += n * per

    def shift(self, n=1, amount=8):
        cpu = self.system.cpu
        per = 1 if cpu.shifter == "barrel" else 1 + amount
        self.trace.append(("shift", n, amount))
        self.instructions += n
        self.breakdown.compute += n * (per + self._dep_stall)

    # --- control flow -------------------------------------------------------------
    def branch(self, n=1, taken=_LOOP_TAKEN, predictable=True):
        cpu = self.system.cpu
        penalty = cpu.mispredict_penalty
        bp = cpu.branch_prediction
        if bp == "none":
            mispredict_rate = taken  # predicted not-taken
            redirect = 0.0
        elif bp == "static":
            # Loop-closing branches are backward: correctly predicted.
            mispredict_rate = (1 - taken) if predictable else 0.4
            redirect = taken  # target computed in decode: 1-cycle bubble
        elif bp == "dynamic":
            mispredict_rate = 0.05 if predictable else 0.25
            redirect = taken
        else:  # dynamic_target: BTB supplies the target
            mispredict_rate = 0.05 if predictable else 0.25
            redirect = 0.0
        per = 1 + mispredict_rate * penalty + redirect
        self.trace.append(("branch", n, taken, predictable))
        self.instructions += n
        self.breakdown.control += n * per

    def call(self, n=1):
        """A function call + return pair (jal/jalr bubbles included)."""
        self.trace.append(("call", n))
        self.instructions += 2 * n
        self.breakdown.control += n * 5

    # --- memory --------------------------------------------------------------------
    def load(self, n, size=1, section="arena", pattern="seq", footprint=None):
        """``n`` loads of ``size`` bytes from a section.

        pattern: ``"hit"`` — always cache/SRAM hit; ``"seq"`` — streaming
        (one miss per cache line); ``"rand"`` — no spatial locality.
        ``footprint`` (bytes) enables the capacity estimate: a loop whose
        working set fits in the data cache stops missing.
        """
        self.trace.append(("load", n, size, section, pattern, footprint))
        self.instructions += n
        self.breakdown.memory += n * (1 + self._load_use)
        self.breakdown.memory += self._miss_cycles(n, size, section, pattern,
                                                   footprint)

    def store(self, n, size=1, section="arena", pattern="seq"):
        self.trace.append(("store", n, size, section))
        self.instructions += n
        region = self.system.region(section)
        cpu = self.system.cpu
        if cpu.has_dcache and region.cacheable:
            # Write-through with a write buffer: mostly 1 cycle.
            self.breakdown.memory += n * 1.2
        else:
            self.breakdown.memory += n * region.tech.write_latency

    def _miss_cycles(self, n, size, section, pattern, footprint):
        region = self.system.region(section)
        cpu = self.system.cpu
        line = self.system.line_bytes
        fill = region.tech.line_fill_cycles(line)
        if cpu.has_dcache and region.cacheable:
            if pattern == "hit":
                return 0.0
            if pattern == "rand":
                rate = 1.0 if footprint is None else expected_miss_rate(
                    footprint, cpu.dcache_bytes, line, accesses_per_byte=1 / line
                )
                return n * rate * fill
            #

            # Streaming: one miss per line of traffic, unless the loop's
            # working set fits in the cache (then only cold misses remain).
            if footprint is not None and footprint <= 0.75 * cpu.dcache_bytes:
                return 0.0
            return n * (size / line) * fill
        # Uncached access pays the device latency every time (the word is
        # as wide as the bus, so byte loads still cost a word transaction).
        extra = region.tech.first_word_latency - 1
        return n * extra

    # --- CFU -----------------------------------------------------------------------
    def cfu(self, n, latency=1, ii=None):
        """``n`` custom instructions with given latency / initiation interval."""
        if ii is None:
            ii = latency
        self.trace.append(("cfu", n, latency, ii))
        self.instructions += n
        self.breakdown.cfu += n * max(ii, 1) + max(0, latency - ii)

    def cfu_busy(self, cycles):
        """CPU waits while the CFU runs autonomously (blocking run)."""
        self.trace.append(("cfu_busy", cycles))
        self.breakdown.cfu += cycles

    # --- finalization ------------------------------------------------------------
    def finish(self, loop_footprint_bytes=256):
        """Charge instruction-fetch stalls and return total cycles."""
        region = self.system.region(self.code_section)
        cpu = self.system.cpu
        line = self.system.line_bytes
        if cpu.has_icache and region.cacheable:
            # Straight-line code touches each 32-bit word once per pass:
            # 0.25 accesses per byte, i.e. at most one miss per 8 fetches.
            rate = expected_miss_rate(
                loop_footprint_bytes, cpu.icache_bytes, line,
                accesses_per_byte=0.25,
            )
            per_instr = rate * region.tech.line_fill_cycles(line)
        elif region.tech.first_word_latency <= 1:
            per_instr = 0.0
        else:
            per_instr = region.tech.first_word_latency - 1
        self.breakdown.fetch += self.instructions * per_instr
        capture = _ACTIVE_CAPTURE.get()
        if capture is not None:
            capture.snapshots.append(CostSnapshot(
                breakdown=self.breakdown,
                instructions=self.instructions,
                trace=tuple(self.trace),
                code_section=self.code_section,
                loop_footprint_bytes=loop_footprint_bytes,
            ))
        return self.breakdown.total

    @property
    def cycles(self):
        return self.breakdown.total
