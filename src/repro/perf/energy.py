"""Energy model: the paper's stated future work, implemented.

"Future work involves studying the optimization space for power and
energy efficiency" (Section V).  This module extends the performance
machine with a first-order FPGA energy model so the same
deploy-profile-optimize loop (and the same Vizier studies) can target
energy instead of — or together with — latency.

The model is the standard two-part decomposition:

- **static energy** — power proportional to the configured logic
  (cells, DSPs, BRAM leak whether or not they toggle) integrated over
  the inference runtime;
- **dynamic energy** — charged per event, taken from the cost model's
  per-operator :class:`~repro.perf.cost.CostBreakdown`: compute cycles,
  control cycles, instruction fetches, CFU-busy cycles, and memory
  traffic by technology (an off-chip DDR3 or SPI flash word costs
  orders of magnitude more than an on-chip SRAM access).

Coefficients are representative 40 nm low-power FPGA figures (iCE40
class).  As with the cycle model, *relative* weights drive every
conclusion; the units are documented so absolute numbers can be
recalibrated against a measured board.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Dynamic energy per event, in nanojoules.
ENERGY_PER_EVENT_NJ = {
    "compute_cycle": 0.012,
    "control_cycle": 0.010,
    "fetch": 0.008,            # per instruction issued
    "fetch_stall_cycle": 0.004,
    "cfu_cycle": 0.045,        # wide SIMD datapaths toggle hard
    "sram_byte": 0.012,
    "bram_byte": 0.009,
    "flash_byte": 1.6,         # serial I/O pads are expensive
    "ddr3_byte": 2.8,          # off-chip I/O + controller
}

#: Static power per configured logic cell, in microwatts.
STATIC_UW_PER_CELL = 0.55
#: Static power per DSP tile / per kilobit of BRAM, in microwatts.
STATIC_UW_PER_DSP = 18.0
STATIC_UW_PER_BRAM_KBIT = 1.2
#: Fixed board overhead (regulators, oscillator, PHYs), in milliwatts.
BOARD_FLOOR_MW = 6.0


@dataclass
class EnergyBreakdown:
    """Energy totals for one inference, in microjoules."""

    compute_uj: float = 0.0
    memory_uj: float = 0.0
    fetch_uj: float = 0.0
    cfu_uj: float = 0.0
    static_uj: float = 0.0

    @property
    def total_uj(self):
        return (self.compute_uj + self.memory_uj + self.fetch_uj
                + self.cfu_uj + self.static_uj)

    @property
    def total_mj(self):
        return self.total_uj / 1000

    def __add__(self, other):
        return EnergyBreakdown(
            self.compute_uj + other.compute_uj,
            self.memory_uj + other.memory_uj,
            self.fetch_uj + other.fetch_uj,
            self.cfu_uj + other.cfu_uj,
            self.static_uj + other.static_uj,
        )

    def summary(self):
        rows = [("compute", self.compute_uj), ("memory", self.memory_uj),
                ("fetch", self.fetch_uj), ("cfu", self.cfu_uj),
                ("static", self.static_uj)]
        lines = [f"total energy: {self.total_uj:,.1f} uJ per inference"]
        for name, value in sorted(rows, key=lambda r: -r[1]):
            share = 100 * value / self.total_uj if self.total_uj else 0.0
            lines.append(f"  {name:8s} {value:>12,.1f} uJ  {share:5.1f}%")
        return "\n".join(lines)


def static_power_mw(resources):
    """Static power of a configured design, in milliwatts."""
    return (BOARD_FLOOR_MW
            + resources.logic_cells * STATIC_UW_PER_CELL / 1000
            + resources.dsps * STATIC_UW_PER_DSP / 1000
            + (resources.bram_bits / 1024) * STATIC_UW_PER_BRAM_KBIT / 1000)


def _byte_event(tech_name):
    if "flash" in tech_name:
        return "flash_byte"
    if tech_name == "ddr3":
        return "ddr3_byte"
    if tech_name == "bram":
        return "bram_byte"
    return "sram_byte"


@dataclass
class EnergyModel:
    """Estimates inference energy from a cycle estimate + fit result."""

    coefficients: dict = field(
        default_factory=lambda: dict(ENERGY_PER_EVENT_NJ))

    def estimate(self, inference_estimate, fit_result):
        """Energy for one inference (an :class:`EnergyBreakdown`)."""
        c = self.coefficients
        system = inference_estimate.system
        total = EnergyBreakdown()
        weights_event = _byte_event(system.region("model_weights").tech.name)
        arena_event = _byte_event(system.region("arena").tech.name)

        for cost in inference_estimate.op_costs:
            events = cost.breakdown
            if events is None:
                continue
            total.compute_uj += (events.compute * c["compute_cycle"]
                                 + events.control * c["control_cycle"]) / 1000
            total.fetch_uj += (cost.instructions * c["fetch"]
                               + events.fetch * c["fetch_stall_cycle"]) / 1000
            total.cfu_uj += events.cfu * c["cfu_cycle"] / 1000
            # Data movement: ~2 bytes touched per MAC (one weight byte,
            # one activation byte) plus one output byte per 32 MACs.
            if cost.macs:
                total.memory_uj += cost.macs * (
                    c[weights_event] + c[arena_event]) / 1000
            else:
                total.memory_uj += (events.memory
                                    * c[arena_event]) / 1000

        runtime_s = inference_estimate.seconds
        total.static_uj += static_power_mw(fit_result.usage) * runtime_s * 1000
        return total


def energy_per_inference(model, system, fit_result, variants=None):
    """Convenience: estimate cycles then energy in one call.

    Returns ``(EnergyBreakdown, InferenceEstimate)``.
    """
    from .estimator import estimate_inference

    estimate = estimate_inference(model, system, variants)
    return EnergyModel().estimate(estimate, fit_result), estimate
