"""Memory technologies and the address map.

Latency numbers are in CPU clock cycles for a 32-bit word and follow the
platforms in the paper:

- On-chip SRAM / block RAM: single cycle.
- External DDR3 (Arty A7): tens of cycles to open a row, then burst.
- SPI flash executed in place (Fomu): a serial interface moves 1 bit
  per cycle plus command/address overhead; continuous-read XIP bursts
  amortize the command phase, giving ~36 cycles per random word.
  Quad SPI moves 4 bits per cycle — the 3-4x ROM bandwidth jump behind
  the paper's *QuadSPI* optimization step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MemoryTech:
    """Cycle costs of one memory technology."""

    name: str
    first_word_latency: int   # cycles for a random 32-bit read
    per_word_latency: int     # cycles per additional sequential word
    write_latency: int = 1

    def line_fill_cycles(self, line_bytes):
        words = max(1, line_bytes // 4)
        return self.first_word_latency + (words - 1) * self.per_word_latency


# One word over single-bit SPI: 8 command bits + 24 address bits + 32 data
# bits at one bit per cycle, plus controller overhead.
SPI_FLASH = MemoryTech("spi-flash", first_word_latency=48, per_word_latency=20,
                       write_latency=72)
# Quad SPI moves 4 bits per cycle and supports continuous-read mode.
QSPI_FLASH = MemoryTech("qspi-flash", first_word_latency=13, per_word_latency=5,
                        write_latency=20)
ON_CHIP_SRAM = MemoryTech("sram", first_word_latency=1, per_word_latency=1)
BLOCK_RAM = MemoryTech("bram", first_word_latency=1, per_word_latency=1)
# DDR3 through the LiteX memory controller: row activation plus burst.
DDR3 = MemoryTech("ddr3", first_word_latency=24, per_word_latency=1,
                  write_latency=8)


@dataclass
class MemoryRegion:
    """A named address range backed by one memory technology."""

    name: str
    base: int
    size: int
    tech: MemoryTech
    cacheable: bool = True

    @property
    def end(self):
        return self.base + self.size

    def contains(self, addr):
        return self.base <= addr < self.end

    def with_tech(self, tech):
        return replace(self, tech=tech)


class MemoryMap:
    """The SoC address map: an ordered set of non-overlapping regions."""

    def __init__(self, regions=()):
        self.regions = []
        for region in regions:
            self.add(region)

    def add(self, region):
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        return region

    def find(self, addr):
        for region in self.regions:
            if region.contains(addr):
                return region
        raise KeyError(f"address 0x{addr:08x} not mapped")

    def get(self, name):
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def replace_tech(self, name, tech):
        """Swap the technology of a region in place (e.g. SPI -> QSPI)."""
        region = self.get(name)
        region.tech = tech
        return region

    def __iter__(self):
        return iter(self.regions)

    def __repr__(self):
        rows = ", ".join(
            f"{r.name}@0x{r.base:08x}+0x{r.size:x}:{r.tech.name}"
            for r in self.regions
        )
        return f"MemoryMap({rows})"
