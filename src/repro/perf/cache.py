"""Set-associative cache models (true LRU) used by the CPU timing model.

These are trace-driven models: every access updates tag state and
reports hit/miss.  The analytic loop-nest cost model
(:mod:`repro.perf.cost`) uses closed-form miss estimates instead, but is
validated against these models in the test suite.
"""

from __future__ import annotations


class Cache:
    """A size/ways/line-parameterised cache with LRU replacement."""

    def __init__(self, size_bytes, ways=1, line_bytes=32, name="cache"):
        if size_bytes <= 0:
            raise ValueError("cache size must be positive; use None for no cache")
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must be a multiple of ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (ways * line_bytes)
        self.hits = 0
        self.misses = 0
        # Each set is an ordered list of tags, most recently used last.
        self._sets = [[] for _ in range(self.num_sets)]

    def access(self, addr, write=False):
        """Touch ``addr``; returns True on hit.  Write-allocate policy."""
        line = addr // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        tags = self._sets[index]
        if tag in tags:
            tags.remove(tag)
            tags.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        tags.append(tag)
        if len(tags) > self.ways:
            tags.pop(0)
        return False

    def flush(self):
        for tags in self._sets:
            tags.clear()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self):
        return (
            f"Cache({self.name}: {self.size_bytes}B, {self.ways}-way, "
            f"{self.line_bytes}B lines)"
        )


def expected_miss_rate(footprint_bytes, cache_size_bytes, line_bytes=32,
                       accesses_per_byte=1.0):
    """Closed-form steady-state miss-rate estimate for a looping footprint.

    A loop repeatedly touching ``footprint_bytes`` of memory through a
    cache of ``cache_size_bytes``: if the footprint fits, only cold
    misses remain (≈0 in steady state); once it exceeds the capacity the
    miss rate ramps toward one miss per line of traffic.  The soft ramp
    (fits at <=75% of capacity, fully thrashing at 2x) reflects conflict
    misses in low-associativity caches.
    """
    if cache_size_bytes <= 0:
        return 1.0
    per_line_rate = 1.0 / (line_bytes * accesses_per_byte)
    ratio = footprint_bytes / cache_size_bytes
    if ratio <= 0.75:
        return 0.0
    if ratio >= 2.0:
        return per_line_rate
    return per_line_rate * (ratio - 0.75) / 1.25
