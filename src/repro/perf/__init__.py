"""Performance modeling: caches, memory technologies, cost/energy models,
the whole-model estimator, and the Cortex-M4/CMSIS-NN comparator."""

from .cache import Cache, expected_miss_rate
from .cost import (
    CaptureCosts,
    CostBreakdown,
    CostContext,
    CostSnapshot,
    SystemConfig,
)
from .energy import (
    ENERGY_PER_EVENT_NJ,
    EnergyBreakdown,
    EnergyModel,
    energy_per_inference,
    static_power_mw,
)
from .estimator import (
    FrameworkOverhead,
    InferenceEstimate,
    OpCost,
    estimate_inference,
)
from .memories import (
    BLOCK_RAM,
    DDR3,
    ON_CHIP_SRAM,
    QSPI_FLASH,
    SPI_FLASH,
    MemoryMap,
    MemoryRegion,
    MemoryTech,
)
from .vectorized import COST_AXES, BatchCostModel

__all__ = [
    "BLOCK_RAM", "BatchCostModel", "COST_AXES", "Cache", "CaptureCosts",
    "CostBreakdown", "CostContext", "CostSnapshot", "DDR3",
    "ENERGY_PER_EVENT_NJ", "EnergyBreakdown", "EnergyModel",
    "FrameworkOverhead", "InferenceEstimate", "MemoryMap", "MemoryRegion",
    "MemoryTech", "ON_CHIP_SRAM", "OpCost", "QSPI_FLASH", "SPI_FLASH",
    "SystemConfig", "energy_per_inference", "estimate_inference",
    "expected_miss_rate", "static_power_mw",
]
