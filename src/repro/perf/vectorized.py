"""Batch (vectorized) evaluation of the analytic cost model.

The scalar path — :func:`~repro.perf.estimator.estimate_inference`
driving a :class:`~repro.perf.cost.CostContext` per operator — is a
*pure function* of the CPU-config axes once the workload is fixed:
every kernel variant calls the context primitives with counts that
depend only on (operator, model), never on the system config.  That
means one canonical primitive-call trace per workload can be *replayed*
over N design points at once as NumPy arrays.

The replay is bit-exact by construction, not by re-derivation:

- The per-point unit costs are obtained by running the *real*
  ``CostContext`` primitives on small probe contexts, one per distinct
  combination of the axes that primitive actually reads (bypassing for
  ``alu``, the dcache axis for ``store``, ...).  A probe context's
  accumulators are instrumented floats that record every addition, so
  the exact IEEE-754 operands — and their order — are captured.
- Replay then performs the identical additions elementwise over the
  batch: per accumulator, per trace entry, the recorded operands are
  gathered with ``np.take`` and added in the recorded order.  Python
  ``float`` and NumPy ``float64`` arithmetic are the same IEEE-754
  doubles, so every per-point total is bit-identical to what the scalar
  path computes for that point.
- The one config-dependent trace divergence — ``mul`` on a CPU without
  a multiplier expands to its shift-add software emulation — is handled
  by the probes themselves: probing ``("mul", n)`` at a
  ``multiplier="none"`` combo runs the real expansion and records its
  (longer) addition sequence; shorter sequences are padded with exact
  ``+0.0`` adds, which never change a finite accumulator.

The scalar path stays untouched as the reference oracle;
``tests/test_perf_vectorized.py`` cross-validates the two bit-exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..cpu.vexriscv import VexRiscvConfig
from .cost import CaptureCosts, CostContext, SystemConfig
from .estimator import estimate_inference

#: The CPU-config axes that influence cycle costs.  ``hw_error_checking``
#: and ``icache_ways`` affect only resources and are deliberately absent.
COST_AXES = ("bypassing", "branch_prediction", "multiplier", "divider",
             "shifter", "icache_bytes", "dcache_bytes")

#: Which axes each CostContext primitive actually reads.  Probes enumerate
#: only these; the cross-validation tests catch any drift if a primitive
#: grows a new dependence.
_ENTRY_AXES = {
    "alu": ("bypassing",),
    "mul": ("multiplier", "bypassing", "branch_prediction"),
    "div": ("divider",),
    "shift": ("shifter", "bypassing"),
    "branch": ("branch_prediction",),
    "call": (),
    "load": ("bypassing", "dcache_bytes"),
    "store": ("dcache_bytes",),
    "cfu": (),
    "cfu_busy": (),
}

_FINISH_AXES = ("icache_bytes",)

#: Anchor values for axes a probe does not enumerate.  Any valid config
#: works — by construction the probe result cannot depend on them.  The
#: multiplier must be present so the canonical capture trace contains
#: ``("mul", n)`` entries rather than their software expansion.
_CANONICAL_CPU = dict(
    bypassing=True, branch_prediction="dynamic", multiplier="single_cycle",
    divider="iterative", shifter="barrel", hw_error_checking=False,
    icache_bytes=4096, icache_ways=1, dcache_bytes=4096,
)

_ACCUMULATORS = ("compute", "memory", "fetch", "cfu", "control",
                 "instructions")


class _TapedNumber(float):
    """A float accumulator that records every addition applied to it."""

    def __new__(cls, value, tape, label):
        self = super().__new__(cls, value)
        self.tape = tape
        self.label = label
        return self

    def __add__(self, other):
        self.tape.append((self.label, float(other)))
        return _TapedNumber(float(self) + other, self.tape, self.label)


def _probe_context(system, cpu, code_section):
    """A CostContext on ``cpu`` whose accumulators record their adds."""
    probe_system = SystemConfig(cpu=cpu, memory_map=system.memory_map,
                                placement=system.placement,
                                clock_hz=system.clock_hz,
                                line_bytes=system.line_bytes)
    ctx = CostContext(probe_system, code_section=code_section)
    tape = []
    for name in ("compute", "memory", "fetch", "cfu", "control"):
        setattr(ctx.breakdown, name, _TapedNumber(0.0, tape, name))
    ctx.instructions = _TapedNumber(0.0, tape, "instructions")
    return ctx, tape


def _call_primitive(ctx, entry):
    """Replay one captured trace entry onto a context."""
    kind = entry[0]
    if kind == "alu":
        ctx.alu(entry[1])
    elif kind == "mul":
        ctx.mul(entry[1])
    elif kind == "div":
        ctx.div(entry[1])
    elif kind == "shift":
        ctx.shift(entry[1], entry[2])
    elif kind == "branch":
        ctx.branch(entry[1], entry[2], entry[3])
    elif kind == "call":
        ctx.call(entry[1])
    elif kind == "load":
        ctx.load(entry[1], entry[2], entry[3], entry[4], entry[5])
    elif kind == "store":
        ctx.store(entry[1], entry[2], entry[3])
    elif kind == "cfu":
        ctx.cfu(entry[1], entry[2], entry[3])
    elif kind == "cfu_busy":
        ctx.cfu_busy(entry[1])
    else:
        raise ValueError(f"unknown trace entry kind {kind!r}")


def _sequence_by_label(tape):
    """tape -> {accumulator: [operand, ...]} preserving add order."""
    out = {}
    for label, amount in tape:
        out.setdefault(label, []).append(amount)
    return out


@dataclass
class _EntryProgram:
    """One trace entry compiled to per-combo addition tables.

    ``adds`` maps accumulator name -> float64 array of shape
    (n_combos, n_adds); column ``j`` holds the ``j``-th operand each
    combo adds to that accumulator (0.0-padded where a combo performs
    fewer adds).
    """

    axis_names: tuple
    adds: dict


class BatchCostModel:
    """Replays one workload's cost estimation over N design points.

    Parameters
    ----------
    model:
        The TFLite model to estimate.
    system:
        Any :class:`SystemConfig` for the target platform; its memory
        map, placement, clock and line size are reused, its CPU is
        replaced per design point.
    axis_values:
        ``{axis: tuple of candidate values}`` for every name in
        :data:`COST_AXES` — typically the corresponding
        ``ParameterSpace`` value tuples.
    variants / overhead:
        Forwarded to :func:`estimate_inference` for the canonical
        capture run.
    """

    def __init__(self, model, system, axis_values, variants=None,
                 overhead=None):
        missing = [axis for axis in COST_AXES if axis not in axis_values]
        if missing:
            raise KeyError(f"axis_values missing cost axes: {missing}")
        self.axis_values = {axis: tuple(axis_values[axis])
                            for axis in COST_AXES}
        self._system = system
        canonical = VexRiscvConfig(**_CANONICAL_CPU)
        capture_system = SystemConfig(cpu=canonical,
                                      memory_map=system.memory_map,
                                      placement=system.placement,
                                      clock_hz=system.clock_hz,
                                      line_bytes=system.line_bytes)
        estimate = estimate_inference(model, capture_system,
                                      variants=variants, overhead=overhead)
        self._programs = [
            self._compile_unit(cost.trace, cost.code_section,
                               cost.loop_footprint_bytes)
            for cost in estimate.op_costs
        ]
        self._programs.append(self._compile_unit(
            estimate.overhead_trace, estimate.overhead_code_section,
            estimate.overhead_loop_footprint_bytes))
        self.op_names = [cost.op_name for cost in estimate.op_costs]
        self.canonical_estimate = estimate

    # --- compilation: probe the real primitives per axis combo -------------------
    def _cpu_for(self, overrides):
        return VexRiscvConfig(**{**_CANONICAL_CPU, **overrides})

    def _compile_unit(self, trace, code_section, loop_footprint_bytes):
        """(trace, section, footprint) -> list of _EntryProgram + finish."""
        entries = []
        with CaptureCosts():  # shield any ambient capture from probe finishes
            for entry in trace:
                entries.append(self._compile_entry(entry, code_section))
            entries.append(self._compile_finish(code_section,
                                                loop_footprint_bytes))
        return entries

    def _compile_entry(self, entry, code_section):
        axes = _ENTRY_AXES[entry[0]]
        combos = list(itertools.product(*(self.axis_values[a] for a in axes)))
        sequences = []
        for combo in combos:
            cpu = self._cpu_for(dict(zip(axes, combo)))
            ctx, tape = _probe_context(self._system, cpu, code_section)
            _call_primitive(ctx, entry)
            sequences.append(_sequence_by_label(tape))
        return _EntryProgram(axis_names=axes,
                             adds=self._pad_sequences(sequences))

    def _compile_finish(self, code_section, loop_footprint_bytes):
        """The fetch charge: ``fetch += instructions * per_instr``.

        Probed with ``instructions = 1.0`` so the recorded operand *is*
        the per-instruction stall; replay multiplies by the batch's
        accumulated instruction counts (the same single IEEE multiply
        the scalar path performs).
        """
        combos = list(itertools.product(
            *(self.axis_values[a] for a in _FINISH_AXES)))
        sequences = []
        for combo in combos:
            cpu = self._cpu_for(dict(zip(_FINISH_AXES, combo)))
            ctx, tape = _probe_context(self._system, cpu, code_section)
            ctx.instructions = 1.0
            ctx.finish(loop_footprint_bytes=loop_footprint_bytes)
            # ``finish`` returns breakdown.total, whose computation taps
            # spurious adds onto other labels; only the fetch add is real.
            sequences.append({"fetch": [amt for label, amt in tape
                                        if label == "fetch"]})
        program = _EntryProgram(axis_names=_FINISH_AXES,
                                adds=self._pad_sequences(sequences))
        program.is_finish = True
        return program

    @staticmethod
    def _pad_sequences(sequences):
        """Merge per-combo add sequences into rectangular tables."""
        labels = []
        for seq in sequences:
            for label in seq:
                if label not in labels:
                    labels.append(label)
        adds = {}
        for label in labels:
            width = max(len(seq.get(label, ())) for seq in sequences)
            table = np.zeros((len(sequences), width))
            for row, seq in enumerate(sequences):
                amounts = seq.get(label, ())
                table[row, :len(amounts)] = amounts
            adds[label] = table
        return adds

    # --- replay ------------------------------------------------------------------
    def _combo_indices(self, axis_names, axis_indices, n):
        if not axis_names:
            return np.zeros(n, dtype=np.intp)
        flat = np.zeros(n, dtype=np.intp)
        for axis in axis_names:
            flat = flat * len(self.axis_values[axis]) + axis_indices[axis]
        return flat

    def _unit_cycles(self, programs, axis_indices, n):
        acc = {name: np.zeros(n) for name in _ACCUMULATORS}
        for program in programs:
            combo = self._combo_indices(program.axis_names, axis_indices, n)
            if getattr(program, "is_finish", False):
                per_instr = np.take(program.adds["fetch"][:, 0], combo)
                acc["fetch"] += acc["instructions"] * per_instr
                continue
            for label, table in program.adds.items():
                target = acc[label]
                for column in range(table.shape[1]):
                    target += np.take(table[:, column], combo)
        # CostBreakdown.total, in its exact association order.
        return (acc["compute"] + acc["memory"] + acc["fetch"]
                + acc["cfu"] + acc["control"])

    def cycles(self, axis_indices):
        """Total inference cycles for a batch of design points.

        ``axis_indices`` maps each :data:`COST_AXES` name to an integer
        array (all the same length N) indexing into the corresponding
        ``axis_values`` tuple.  Returns a float64 array of length N
        whose every element is bit-identical to
        ``estimate_inference(...).total_cycles`` at that point.
        """
        n = len(next(iter(axis_indices.values())))
        total = np.zeros(n)
        for programs in self._programs:
            total += self._unit_cycles(programs, axis_indices, n)
        return total

    def cycles_for_points(self, points):
        """Convenience scalar-shaped API: a list of parameter dicts."""
        axis_indices = {
            axis: np.array([self.axis_values[axis].index(point[axis])
                            for point in points], dtype=np.intp)
            for axis in COST_AXES
        }
        return self.cycles(axis_indices)
