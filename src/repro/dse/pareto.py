"""Pareto-front utilities for multi-objective design-space exploration."""

from __future__ import annotations


def dominates(a, b):
    """True if point ``a`` dominates ``b`` (all objectives minimized).

    ``a`` and ``b`` are equal-length metric tuples.
    """
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points, key=None):
    """Non-dominated subset of ``points`` (minimization).

    ``key(point)`` extracts the metric tuple; defaults to identity.
    Returns the front sorted by the full metric tuple — a value-based
    order, so two runs that discover the same front in different
    completion orders (serial vs parallel workers, or a resumed service
    study) render it identically.
    """
    key = key or (lambda p: p)
    front = []
    for candidate in points:
        candidate_metrics = key(candidate)
        dominated = False
        survivors = []
        for existing in front:
            existing_metrics = key(existing)
            if dominates(existing_metrics, candidate_metrics):
                dominated = True
                survivors.append(existing)
            elif not dominates(candidate_metrics, existing_metrics):
                survivors.append(existing)
        if not dominated:
            survivors.append(candidate)
            front = survivors
    return sorted(front, key=key)


def hypervolume_2d(front, reference):
    """2-D hypervolume (area dominated up to ``reference``), for tests
    and convergence tracking."""
    points = sorted((tuple(p) for p in front))
    area = 0.0
    prev_x = None
    best_y = reference[1]
    for x, y in points:
        if x >= reference[0]:
            break
        if prev_x is not None:
            area += (x - prev_x) * max(0.0, reference[1] - best_y)
        prev_x = x
        best_y = min(best_y, y)
    if prev_x is not None:
        area += (reference[0] - prev_x) * max(0.0, reference[1] - best_y)
    return area
