"""Worker pools: shard evaluation batches across processes.

Two backends behind one ``map(fn, items)`` interface:

- :class:`SerialBackend` — in-process, zero overhead; what
  ``workers=1`` means.
- :class:`MultiprocessingBackend` — a forking :mod:`multiprocessing`
  pool; ``fn`` must be a module-level (picklable) function and the
  optional ``initializer`` seeds per-process state once.

Either way a worker exception fails the whole batch loudly with a
:class:`WorkerPoolError` naming the failed item — no hang, no partial
silent result — and a failed multiprocessing pool is terminated so no
orphan workers linger.
"""

from __future__ import annotations

import multiprocessing


class WorkerPoolError(RuntimeError):
    """A worker failed while evaluating a batch."""


class SerialBackend:
    """In-process execution with the same contract as the process pool."""

    def __init__(self, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)

    def map(self, fn, items):
        items = list(items)
        results = []
        for index, item in enumerate(items):
            try:
                results.append(fn(item))
            except Exception as error:
                raise WorkerPoolError(
                    f"worker failed on item {index + 1}/{len(items)}: "
                    f"{error!r}") from error
        return results

    def close(self):
        pass


def _context():
    # fork shares the parent's loaded model/board state for free; fall
    # back to spawn where fork does not exist (non-POSIX platforms).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform dependent
        return multiprocessing.get_context("spawn")


class MultiprocessingBackend:
    """A process pool; exceptions are re-raised as WorkerPoolError and
    the pool is torn down (never left hanging half-failed)."""

    def __init__(self, workers, initializer=None, initargs=()):
        self.workers = workers
        self._pool = _context().Pool(processes=workers,
                                     initializer=initializer,
                                     initargs=initargs)

    def map(self, fn, items):
        items = list(items)
        try:
            return self._pool.map(fn, items)
        except Exception as error:
            self.close()
            raise WorkerPoolError(
                f"worker failed while evaluating a batch of {len(items)}: "
                f"{error!r}") from error

    def close(self):
        self._pool.terminate()
        self._pool.join()


class WorkerPool:
    """``map`` batches across ``workers`` processes (1 = in-process).

    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, workers=1, initializer=None, initargs=()):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if workers == 1:
            self._backend = SerialBackend(initializer, initargs)
        else:
            self._backend = MultiprocessingBackend(workers, initializer,
                                                   initargs)

    def map(self, fn, items):
        """Apply ``fn`` to every item; order-preserving.  Raises
        :class:`WorkerPoolError` if any worker raises."""
        return self._backend.map(fn, items)

    def close(self):
        self._backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
