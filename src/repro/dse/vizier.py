"""The Vizier *service* facade: study management the way OSS Vizier does.

The paper bundles "the open source version of Vizier, a black-box
optimization service".  :mod:`repro.dse.study` provides the optimizer;
this module provides the service shape around it — named studies owned
by clients, concurrent client suggestion streams, early stopping, and
study listing — so code written against the OSS Vizier client maps
one-to-one.

>>> service = VizierService()
>>> study = service.create_study(
...     owner="cfu-playground", study_id="kws-latency",
...     space=vexriscv_space(), goals=["cycles"])   # doctest: +SKIP
>>> client = service.client(study.resource_name, worker_id="worker-0")
>>> for _ in range(10):
...     trial = client.suggest()
...     client.complete(trial, {"cycles": evaluate(trial.parameters)})
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .study import MetricGoal, Study


class VizierError(RuntimeError):
    pass


@dataclass
class StudyRecord:
    resource_name: str
    owner: str
    study_id: str
    study: Study
    state: str = "ACTIVE"
    workers: set = field(default_factory=set)


class StudyClient:
    """A worker's handle on a study (OSS Vizier's ``StudyClient``)."""

    def __init__(self, record, worker_id):
        self._record = record
        self.worker_id = worker_id
        self._pending = {}

    @property
    def resource_name(self):
        return self._record.resource_name

    def suggest(self, count=1):
        if self._record.state != "ACTIVE":
            raise VizierError(f"study {self.resource_name} is "
                              f"{self._record.state}")
        trials = self._record.study.suggest(count)
        for trial in trials:
            self._pending[trial.trial_id] = trial
        return trials if count > 1 else trials[0]

    def complete(self, trial, metrics=None, infeasible=False):
        if trial.trial_id not in self._pending:
            raise VizierError(
                f"trial {trial.trial_id} is not pending for {self.worker_id}"
            )
        trial.complete(metrics, infeasible=infeasible)
        del self._pending[trial.trial_id]
        return trial

    def optimal_trials(self):
        return self._record.study.optimal_trials()

    def trials(self):
        return list(self._record.study.trials)


class VizierService:
    """An in-process optimization service holding many studies."""

    def __init__(self):
        self._studies = {}

    @staticmethod
    def _resource_name(owner, study_id):
        return f"owners/{owner}/studies/{study_id}"

    def create_study(self, owner, study_id, space, goals, algorithm=None,
                     seed=0):
        name = self._resource_name(owner, study_id)
        if name in self._studies:
            raise VizierError(f"study {name} already exists")
        study = Study(space=space,
                      goals=[g if isinstance(g, MetricGoal) else MetricGoal(g)
                             for g in goals],
                      algorithm=algorithm, name=study_id, seed=seed)
        record = StudyRecord(resource_name=name, owner=owner,
                             study_id=study_id, study=study)
        self._studies[name] = record
        return record

    def get_study(self, resource_name):
        try:
            return self._studies[resource_name]
        except KeyError:
            raise VizierError(f"no study {resource_name}") from None

    def client(self, resource_name, worker_id="worker-0"):
        record = self.get_study(resource_name)
        record.workers.add(worker_id)
        return StudyClient(record, worker_id)

    def list_studies(self, owner=None):
        return [record for record in self._studies.values()
                if owner is None or record.owner == owner]

    def stop_study(self, resource_name):
        self.get_study(resource_name).state = "STOPPED"

    def delete_study(self, resource_name):
        self.get_study(resource_name)
        del self._studies[resource_name]

    def should_stop_early(self, resource_name, patience=20):
        """Simple early-stopping policy: no best-trial improvement within
        the last ``patience`` completed trials."""
        record = self.get_study(resource_name)
        study = record.study
        completed = study.completed_trials()
        if len(completed) <= patience:
            return False
        best_value = None
        best_index = 0
        for index, trial in enumerate(completed):
            value = study.metric_tuple(trial)[0]
            if best_value is None or value < best_value:
                best_value, best_index = value, index
        return len(completed) - 1 - best_index >= patience
