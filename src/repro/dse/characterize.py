"""CFU latency-envelope characterization: one batched run per CFU.

The Fig. 7 cost model prices every CFU op with a single latency number;
this module measures the real envelope from the gateware instead.
Every (opcode, operand-class) pair becomes one lane of a single
lane-parallel RTL simulation (:class:`repro.cfu.BatchRtlCfuDriver`), so
a full envelope — min/mean/max cycles per opcode per operand class —
costs one simulator pass instead of ``len(opcodes) * len(classes)``
sequential co-simulations.  Per-lane results are bit-identical to the
scalar :class:`~repro.cfu.RtlCfuAdapter`, so the envelope is exactly
what a loop of scalar measurements would report.

Exposed on the CLI as ``repro dse characterize <cfu>``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..cfu import BatchRtlCfuDriver

#: Operand classes swept by default: each maps a name to a
#: ``callable(rng) -> (a, b)`` drawing one 32-bit operand pair.  Data-
#: dependent datapaths (early-out multipliers, saturation paths,
#: zero-skip accumulators) show up as spread between classes.
OPERAND_CLASSES = {
    "zeros": lambda rng: (0, 0),
    "ones": lambda rng: (0xFFFFFFFF, 0xFFFFFFFF),
    "alternating": lambda rng: (0x55555555, 0xAAAAAAAA),
    "small": lambda rng: (rng.getrandbits(8), rng.getrandbits(8)),
    "signed-extremes": lambda rng: (rng.choice((0x80000000, 0x7FFFFFFF)),
                                    rng.choice((0x80000000, 0x7FFFFFFF))),
    "random": lambda rng: (rng.getrandbits(32), rng.getrandbits(32)),
}


@dataclass
class ClassProfile:
    """Measured latency of one (opcode, operand class) lane."""

    funct3: int
    funct7: int
    operand_class: str
    ops: int
    min_cycles: int
    max_cycles: int
    total_cycles: int

    @property
    def mean_cycles(self):
        return self.total_cycles / self.ops if self.ops else 0.0

    @property
    def opcode(self):
        return (self.funct3, self.funct7)

    def to_record(self):
        return {"funct3": self.funct3, "funct7": self.funct7,
                "operand_class": self.operand_class, "ops": self.ops,
                "min_cycles": self.min_cycles,
                "max_cycles": self.max_cycles,
                "mean_cycles": self.mean_cycles}


@dataclass
class LatencyEnvelope:
    """The characterization result: one :class:`ClassProfile` per lane."""

    cfu_name: str
    lanes: int
    backend: str
    ops_per_lane: int
    profiles: list = field(default_factory=list)

    def per_opcode(self):
        """``{(funct3, funct7): (min, max)}`` across all operand classes."""
        envelope = {}
        for profile in self.profiles:
            lo, hi = envelope.get(profile.opcode,
                                  (profile.min_cycles, profile.max_cycles))
            envelope[profile.opcode] = (min(lo, profile.min_cycles),
                                        max(hi, profile.max_cycles))
        return envelope

    @property
    def data_dependent(self):
        """True if any opcode's latency varies with its operands."""
        return any(lo != hi for lo, hi in self.per_opcode().values())

    def to_record(self):
        return {"cfu": self.cfu_name, "lanes": self.lanes,
                "backend": self.backend, "ops_per_lane": self.ops_per_lane,
                "data_dependent": self.data_dependent,
                "profiles": [p.to_record() for p in self.profiles]}

    def summary(self):
        lines = [f"{self.cfu_name}: {self.lanes} lanes "
                 f"({self.backend} backend), {self.ops_per_lane} ops/lane"]
        for (f3, f7), (lo, hi) in sorted(self.per_opcode().items()):
            spread = f"{lo}" if lo == hi else f"{lo}..{hi}"
            lines.append(f"  cfu[{f7},{f3}]: {spread} cycles")
            for profile in self.profiles:
                if profile.opcode != (f3, f7):
                    continue
                lines.append(
                    f"    {profile.operand_class:16s} "
                    f"min {profile.min_cycles:>3} "
                    f"max {profile.max_cycles:>3} "
                    f"mean {profile.mean_cycles:6.2f}")
        return "\n".join(lines)


def characterize_cfu(rtl_cfu, opcodes, classes=None, ops=16, seed=0,
                     setup=None, backend="auto", timeout=4096):
    """Measure ``rtl_cfu``'s latency envelope in ONE batched simulation.

    ``opcodes`` is a list of ``(funct3, funct7)`` pairs; ``classes``
    maps class names to operand generators (default
    :data:`OPERAND_CLASSES`).  Each (opcode, class) pair runs as its own
    lane: ``ops`` back-to-back ops of that opcode with operands drawn
    from the class generator, optionally preceded by ``setup(rng)`` —
    a list of ``(funct3, funct7, a, b)`` config ops for stateful CFUs
    (excluded from the measurement).  Lane stimulus depends only on
    ``(seed, opcode, class name)``, so envelopes are reproducible and
    independent of lane ordering.

    Returns a :class:`LatencyEnvelope`.
    """
    classes = OPERAND_CLASSES if classes is None else classes
    lane_specs = [(opcode, name) for opcode in opcodes for name in classes]
    if not lane_specs:
        raise ValueError("need at least one opcode and one operand class")
    sequences = []
    for (funct3, funct7), name in lane_specs:
        rng = random.Random(f"{seed}:{funct3}:{funct7}:{name}")
        prefix = list(setup(rng)) if setup else []
        generate = classes[name]
        sequence = list(prefix)
        for _ in range(ops):
            a, b = generate(rng)
            sequence.append((funct3, funct7, a & 0xFFFFFFFF, b & 0xFFFFFFFF))
        sequences.append(sequence)
    driver = BatchRtlCfuDriver(rtl_cfu, lanes=len(sequences),
                               timeout=timeout, backend=backend)
    lane_results = driver.run(sequences)
    profiles = []
    for (opcode, name), sequence, results in zip(lane_specs, sequences,
                                                 lane_results):
        cycles = [c for _, c in results[len(sequence) - ops:]]
        funct3, funct7 = opcode
        profiles.append(ClassProfile(
            funct3=funct3, funct7=funct7, operand_class=name, ops=ops,
            min_cycles=min(cycles), max_cycles=max(cycles),
            total_cycles=sum(cycles)))
    return LatencyEnvelope(cfu_name=rtl_cfu.name, lanes=len(lane_specs),
                           backend=driver.backend, ops_per_lane=ops,
                           profiles=profiles)


@dataclass
class CharacterizationTarget:
    """A named CFU ready to characterize: factory, opcodes, and the
    (optional) config prefix its stateful ops need."""

    factory: object
    opcodes: tuple
    setup: object = None


def characterization_targets():
    """CFUs addressable from ``repro dse characterize``, by name: the
    generic library plus the paper's workload CFUs."""
    from ..accel import Cfu1Rtl, KwsCfu2Rtl, Mac4Rtl, PostprocRtl
    from ..accel.kws import model as km
    from ..accel.library import LIBRARY
    from ..accel.mnv2 import model as cm

    targets = {}
    for name, (_model_cls, rtl_cls, opcodes) in LIBRARY.items():
        targets[name] = CharacterizationTarget(rtl_cls, tuple(opcodes))

    def kws_setup(rng):
        return [
            (km.F3_CONFIG, km.CFG_MULT, rng.randrange(1 << 30, 1 << 31), 0),
            (km.F3_CONFIG, km.CFG_SHIFT, -7 & 0xFFFFFFFF, 0),
            (km.F3_CONFIG, km.CFG_OUTPUT, (-10) & 0xFFFFFFFF,
             0x80 | (0x7F << 8)),
        ]

    targets["kws-cfu2"] = CharacterizationTarget(
        KwsCfu2Rtl,
        ((km.F3_MAC4, 0), (km.F3_MAC4, 1), (km.F3_MAC1, 0),
         (km.F3_POSTPROC, 0), (km.F3_READ_ACC, 0)),
        kws_setup)
    targets["mnv2-mac4"] = CharacterizationTarget(
        Mac4Rtl, ((cm.F3_MAC4, 0), (cm.F3_MAC4, 1)))

    def postproc_setup(rng):
        ops = []
        for _ in range(8):
            ops.append((cm.F3_CONFIG, cm.CFG_BIAS,
                        rng.randrange(-1000, 1000) & 0xFFFFFFFF, 0))
            ops.append((cm.F3_CONFIG, cm.CFG_MULT,
                        rng.randrange(1 << 30, 1 << 31), 0))
            ops.append((cm.F3_CONFIG, cm.CFG_SHIFT,
                        -rng.randrange(0, 12) & 0xFFFFFFFF, 0))
        ops.append((cm.F3_CONFIG, cm.CFG_OUTPUT, (-3) & 0xFFFFFFFF,
                    0x80 | (0x7F << 8)))
        return ops

    targets["mnv2-postproc"] = CharacterizationTarget(
        lambda: PostprocRtl(channels=8), ((cm.F3_POSTPROC, 0),),
        postproc_setup)

    def cfu1_setup(rng, depth=4, channels=8):
        # Mirrors the throughput benchmark's warm-up: depth + per-channel
        # requantize config, then full filter/input stores so RUN ops
        # stream from loaded memories.
        ops = [(cm.F3_CONFIG, cm.CFG_DEPTH, depth, 0)]
        for _ in range(channels):
            ops.append((cm.F3_CONFIG, cm.CFG_BIAS,
                        rng.randrange(-1000, 1000) & 0xFFFFFFFF, 0))
            ops.append((cm.F3_CONFIG, cm.CFG_MULT,
                        rng.randrange(1 << 30, 1 << 31), 0))
            ops.append((cm.F3_CONFIG, cm.CFG_SHIFT,
                        -rng.randrange(0, 12) & 0xFFFFFFFF, 0))
        ops.append((cm.F3_CONFIG, cm.CFG_OUTPUT, (-3) & 0xFFFFFFFF,
                    0x80 | (0x7F << 8)))
        for _ in range(channels * depth):
            ops.append((cm.F3_WRITE_FILT, 0, rng.getrandbits(32), 0))
        ops.append((cm.F3_WRITE_INPUT, 1, rng.getrandbits(32), 0))
        for _ in range(depth - 1):
            ops.append((cm.F3_WRITE_INPUT, 0, rng.getrandbits(32), 0))
        return ops

    targets["mnv2-cfu1"] = CharacterizationTarget(
        Cfu1Rtl,
        ((cm.F3_RUN1, cm.RUN_RAW), (cm.F3_RUN1, cm.RUN_POSTPROC),
         (cm.F3_RUN1, cm.RUN_PACK4)),
        cfu1_setup)
    return targets
