"""Parameter spaces for black-box optimization (Vizier's study config).

The Fig. 7 design space is built here: the VexRiscv knobs the paper
lists (branch predictor types, caches, multipliers, dividers, shifters,
bypassing, error checking) crossed with the CFU choice — approximately
93,000 design points across the three CFU families.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..cpu.vexriscv import BRANCH_PREDICTORS, DIVIDERS, MULTIPLIERS, SHIFTERS, VexRiscvConfig


@dataclass(frozen=True)
class Parameter:
    """A categorical/discrete parameter with an explicit value list."""

    name: str
    values: tuple

    def sample(self, rng):
        return rng.choice(self.values)

    def neighbors(self, value):
        index = self.values.index(value)
        result = []
        if index > 0:
            result.append(self.values[index - 1])
        if index < len(self.values) - 1:
            result.append(self.values[index + 1])
        return result or [value]


class ParameterSpace:
    """An ordered set of parameters; a *point* is a name->value dict."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        self._by_name = {p.name: p for p in self.parameters}
        if len(self._by_name) != len(self.parameters):
            raise ValueError("duplicate parameter names")

    def __getitem__(self, name):
        return self._by_name[name]

    def __iter__(self):
        return iter(self.parameters)

    def size(self):
        total = 1
        for parameter in self.parameters:
            total *= len(parameter.values)
        return total

    def sample(self, rng=None):
        rng = rng or random.Random()
        return {p.name: p.sample(rng) for p in self.parameters}

    def mutate(self, point, rng, num_mutations=1):
        """Regularized-evolution style mutation: perturb a few parameters."""
        child = dict(point)
        for parameter in rng.sample(self.parameters,
                                    min(num_mutations, len(self.parameters))):
            choices = [v for v in parameter.values
                       if v != point[parameter.name]]
            if choices:
                child[parameter.name] = rng.choice(choices)
        return child

    def grid(self):
        """Lazy exhaustive iteration, last parameter varying fastest.

        The order is a stable part of the contract: the tensorized
        sweep (:mod:`repro.dse.exhaustive`) maps flat C-order indices
        to points assuming exactly this enumeration, and the service's
        ``exhaustive`` algorithm replays suggestions positionally.
        """
        names = [p.name for p in self.parameters]
        for values in itertools.product(*(p.values for p in self.parameters)):
            yield dict(zip(names, values))

    def validate(self, point):
        for parameter in self.parameters:
            if point.get(parameter.name) not in parameter.values:
                raise ValueError(
                    f"invalid value {point.get(parameter.name)!r} "
                    f"for {parameter.name}"
                )


CACHE_SIZES = (0, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)


def vexriscv_space():
    """The soft-CPU half of the Fig. 7 space (31,104 points)."""
    return ParameterSpace([
        Parameter("bypassing", (False, True)),
        Parameter("branch_prediction", tuple(BRANCH_PREDICTORS)),
        Parameter("multiplier", tuple(MULTIPLIERS)),
        Parameter("divider", tuple(DIVIDERS)),
        Parameter("shifter", tuple(SHIFTERS)),
        Parameter("hw_error_checking", (False, True)),
        Parameter("icache_bytes", CACHE_SIZES),
        Parameter("dcache_bytes", CACHE_SIZES),
        Parameter("icache_ways", (1, 2)),
    ])


def point_to_cpu_config(point):
    """Materialize a space point as a VexRiscvConfig."""
    return VexRiscvConfig(
        bypassing=point["bypassing"],
        branch_prediction=point["branch_prediction"],
        multiplier=point["multiplier"],
        divider=point["divider"],
        shifter=point["shifter"],
        hw_error_checking=point["hw_error_checking"],
        icache_bytes=point["icache_bytes"],
        icache_ways=point["icache_ways"],
        dcache_bytes=point["dcache_bytes"],
    )
