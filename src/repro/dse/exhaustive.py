"""Tensorized whole-space DSE: exact Fig. 7 fronts by direct enumeration.

The paper explores its ~93,000-point space with a black-box optimizer
because each point looks expensive.  In this reproduction both Fig. 7
objectives are closed-form in the CPU-config axes — cycles from the
analytic cost model, logic cells from the netlist estimator — so the
*whole* cartesian grid can be evaluated at once:

- :class:`GridTensors` turns a :class:`~repro.dse.space.ParameterSpace`
  into per-axis index arrays over the flat C-order grid (the same order
  as ``ParameterSpace.grid()``); no per-point dicts exist anywhere.
- :class:`~repro.perf.vectorized.BatchCostModel` replays the captured
  cost trace over the cost-relevant sub-grid and the result is gathered
  back onto the full grid (``hw_error_checking`` and ``icache_ways``
  affect only resources, an 8x reduction of the cycle plane).
- :class:`VectorizedFit` evaluates ``cpu_resources`` + board ``fit()``
  as sums of per-option contributions probed from the real functions,
  yielding a fit *mask* instead of per-point exceptions.
- :func:`pareto_front_indices` extracts the exact front in O(n log n).

Every per-point (cycles, logic_cells, fit) triple is bit-identical to
the scalar :func:`~repro.dse.runner.evaluate_design`, which stays
untouched as the reference oracle.  :func:`run_exhaustive_service`
streams the precomputed results through the study service's trial store
in chunked batches (algorithm ``"exhaustive"``), so an exact sweep is
recorded, resumable, and queryable like any other study.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..boards import ARTY_A7_35T
from ..boards.fitter import UTILIZATION_LIMIT
from ..cpu.vexriscv import VexRiscvConfig, cpu_resources
from ..kernels.reference import reference_variants
from ..models import load
from ..perf.vectorized import COST_AXES, BatchCostModel
from ..soc import Soc
from .pareto import hypervolume_2d
from .runner import CFU_FAMILIES, DsePoint, DseResult, evaluate_design, family_extras
from .space import vexriscv_space

#: Default number of trials streamed per service completion batch.
DEFAULT_CHUNK = 4096

#: Axes that feed the core (cache-independent) part of cpu_resources.
_CORE_AXES = ("bypassing", "branch_prediction", "multiplier", "divider",
              "shifter", "hw_error_checking")
_ICACHE_AXES = ("icache_bytes", "icache_ways")
_DCACHE_AXES = ("dcache_bytes",)


@dataclass
class GridTensors:
    """A ParameterSpace as flat-grid index tensors.

    Flat index ``k`` corresponds to the ``k``-th point of
    ``space.grid()`` (C order, last parameter fastest); ``indices``
    maps each parameter name to its per-point value index.
    """

    names: tuple
    values: tuple
    shape: tuple
    size: int
    indices: dict

    @classmethod
    def from_space(cls, space):
        names = tuple(p.name for p in space.parameters)
        values = tuple(tuple(p.values) for p in space.parameters)
        shape = tuple(len(v) for v in values)
        size = 1
        for extent in shape:
            size *= extent
        unravel = np.unravel_index(np.arange(size), shape)
        indices = {name: axis.astype(np.intp)
                   for name, axis in zip(names, unravel)}
        return cls(names=names, values=values, shape=shape, size=size,
                   indices=indices)

    def _extent(self, name):
        return len(self.values[self.names.index(name)])

    def fold(self, axis_names):
        """Flat combo index over a subset of axes (C order over subset)."""
        flat = np.zeros(self.size, dtype=np.intp)
        for name in axis_names:
            flat = flat * self._extent(name) + self.indices[name]
        return flat

    def axis_subgrid(self, axis_names):
        """Index arrays enumerating just ``axis_names``' own grid."""
        shape = tuple(self._extent(name) for name in axis_names)
        size = 1
        for extent in shape:
            size *= extent
        unravel = np.unravel_index(np.arange(size), shape)
        return {name: axis.astype(np.intp)
                for name, axis in zip(axis_names, unravel)}, size

    def point(self, flat_index):
        """The parameter dict at a flat grid index."""
        out = {}
        remaining = int(flat_index)
        for name, vals in zip(reversed(self.names), reversed(self.values)):
            out[name] = vals[remaining % len(vals)]
            remaining //= len(vals)
        return {name: out[name] for name in self.names}

    def flat_index(self, parameters):
        """The flat grid index of a parameter dict."""
        flat = 0
        for name, vals in zip(self.names, self.values):
            flat = flat * len(vals) + vals.index(parameters[name])
        return flat


def pareto_front_indices(cycles, cells, feasible=None):
    """Indices of the exact Pareto front, (cycles, cells)-ascending.

    Sort by (cycles, cells) and run the skyline scan per cycles-group:
    a point survives iff its cell count equals its group's minimum and
    that minimum strictly undercuts every earlier (faster) group — the
    same contract as the scalar :func:`~repro.dse.pareto.pareto_front`,
    which keeps *all* non-dominated metric ties.  Axes that affect
    neither metric produce exactly such ties on the full grid, and
    dropping them silently would hide design points from the front
    (:meth:`~repro.dse.runner.DseResult.family_front` may still collapse
    ties downstream; this function must not).  O(n log n).
    """
    cycles = np.asarray(cycles)
    cells = np.asarray(cells)
    idx = (np.flatnonzero(feasible) if feasible is not None
           else np.arange(len(cycles)))
    if idx.size == 0:
        return idx
    order = np.lexsort((cells[idx], cycles[idx]))
    idx = idx[order]
    sorted_cycles = cycles[idx]
    sorted_cells = cells[idx]
    positions = np.arange(idx.size)
    new_group = np.empty(idx.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_cycles[1:] != sorted_cycles[:-1]
    start = np.maximum.accumulate(np.where(new_group, positions, 0))
    group_min = sorted_cells[start]    # cells tie-breaks the lexsort
    running_min = np.minimum.accumulate(sorted_cells)
    keep = sorted_cells == group_min
    later = start > 0                  # groups with a strictly faster one
    keep[later] &= group_min[later] < running_min[start[later] - 1]
    return idx[keep]


class VectorizedFit:
    """``cpu_resources`` + board ``fit()`` over a whole grid at once.

    Per-option contributions are probed from the real
    :func:`~repro.cpu.vexriscv.cpu_resources`: the cache-independent
    core is enumerated exactly (its ``ffs = luts // 3`` coupling is not
    separable), and each cache axis contributes an additive delta.  The
    probes keep the vectorized plane automatically in sync with the
    scalar coefficients; structural drift (a cache option that changed
    ffs or dsps) fails loudly at construction.
    """

    def __init__(self, board, grid):
        self.board = board
        self.grid = grid
        values = dict(zip(grid.names, grid.values))

        core_combos = list(itertools.product(
            *(values[a] for a in _CORE_AXES)))
        core = [cpu_resources(VexRiscvConfig(
                    **dict(zip(_CORE_AXES, combo)),
                    icache_bytes=0, dcache_bytes=0))
                for combo in core_combos]
        self._core_luts = np.array([r.luts for r in core], dtype=np.int64)
        self._core_ffs = np.array([r.ffs for r in core], dtype=np.int64)
        self._core_dsps = np.array([r.dsps for r in core], dtype=np.int64)
        self._core_bram = np.array([r.bram_bits for r in core],
                                   dtype=np.int64)

        anchor = cpu_resources(VexRiscvConfig(icache_bytes=0, dcache_bytes=0))
        self._icache_dluts, self._icache_dbram = self._cache_deltas(
            anchor, _ICACHE_AXES, values,
            lambda size, ways: VexRiscvConfig(icache_bytes=size,
                                              icache_ways=ways,
                                              dcache_bytes=0))
        self._dcache_dluts, self._dcache_dbram = self._cache_deltas(
            anchor, _DCACHE_AXES, values,
            lambda size: VexRiscvConfig(icache_bytes=0, dcache_bytes=size))

        self._core_idx = grid.fold(_CORE_AXES)
        self._icache_idx = grid.fold(_ICACHE_AXES)
        self._dcache_idx = grid.fold(_DCACHE_AXES)

        #: Board-constant SoC fabric (peripherals, CSR bank, interconnect,
        #: flash controller): everything in Soc.resources() except the CPU.
        anchor_cpu = VexRiscvConfig()
        soc = Soc(board, anchor_cpu).resources()
        cpu = cpu_resources(anchor_cpu)
        self._fabric = (soc.luts - cpu.luts, soc.ffs - cpu.ffs,
                        soc.dsps - cpu.dsps, soc.bram_bits - cpu.bram_bits)

    @staticmethod
    def _cache_deltas(anchor, axes, values, make_config):
        dluts, dbram = [], []
        for combo in itertools.product(*(values[a] for a in axes)):
            report = cpu_resources(make_config(*combo))
            if report.ffs != anchor.ffs or report.dsps != anchor.dsps:
                raise AssertionError(
                    "cache options changed ffs/dsps; the additive "
                    "decomposition in VectorizedFit no longer holds")
            dluts.append(report.luts - anchor.luts)
            dbram.append(report.bram_bits - anchor.bram_bits)
        return (np.array(dluts, dtype=np.int64),
                np.array(dbram, dtype=np.int64))

    def evaluate(self, cfu_report):
        """(logic_cells, fit_ok) arrays for the grid + one CFU report."""
        const_luts = self._fabric[0] + cfu_report.luts
        const_ffs = self._fabric[1] + cfu_report.ffs
        const_dsps = self._fabric[2] + cfu_report.dsps
        const_bram = self._fabric[3] + cfu_report.bram_bits

        luts = (np.take(self._core_luts, self._core_idx)
                + np.take(self._icache_dluts, self._icache_idx)
                + np.take(self._dcache_dluts, self._dcache_idx)
                + const_luts)
        ffs = np.take(self._core_ffs, self._core_idx) + const_ffs
        dsps = np.take(self._core_dsps, self._core_idx) + const_dsps
        bram = (np.take(self._core_bram, self._core_idx)
                + np.take(self._icache_dbram, self._icache_idx)
                + np.take(self._dcache_dbram, self._dcache_idx)
                + const_bram)

        paired = np.minimum(luts, ffs)
        logic_cells = np.maximum(luts, ffs) + paired // 4
        board = self.board
        fit_ok = ~((logic_cells > UTILIZATION_LIMIT * board.logic_cells)
                   | (dsps > board.dsp_blocks)
                   | (bram > board.bram_bits))
        return logic_cells, fit_ok


@dataclass
class FamilyPlane:
    """One CFU family's whole-space evaluation as flat arrays."""

    family: str
    cycles: np.ndarray       # (N,) float64 — estimate_inference totals
    logic_cells: np.ndarray  # (N,) int64 — fitted usage incl. the CFU
    fit_ok: np.ndarray       # (N,) bool — the board fit mask
    front_indices: np.ndarray

    @property
    def feasible_count(self):
        return int(self.fit_ok.sum())

    def front_metrics(self):
        return [(float(self.cycles[i]), int(self.logic_cells[i]))
                for i in self.front_indices]


class ExhaustiveSweeper:
    """Evaluates every point of the space for any CFU family."""

    def __init__(self, model=None, board=None, space=None):
        self.model = model or load("mobilenet_v2", width_multiplier=0.75,
                                   num_classes=100)
        self.board = board or ARTY_A7_35T
        self.space = space or vexriscv_space()
        self.grid = GridTensors.from_space(self.space)
        required = set(COST_AXES) | set(_CORE_AXES) | set(_ICACHE_AXES) \
            | set(_DCACHE_AXES)
        missing = required - set(self.grid.names)
        if missing:
            raise ValueError(f"space is missing parameters {sorted(missing)}")
        # The memory map, placement and clock depend only on the board;
        # the per-point CPU is swapped in by the batch cost model.
        self._system = Soc(self.board, VexRiscvConfig()).system_config()
        self._fit = VectorizedFit(self.board, self.grid)
        self._cost_fold = self.grid.fold(COST_AXES)
        self._planes = {}

    def family_plane(self, family):
        """The :class:`FamilyPlane` for one CFU family (cached)."""
        if family not in self._planes:
            extras, cfu_report = family_extras(family)
            variants = reference_variants().extended(*extras)
            axis_values = {
                axis: self.grid.values[self.grid.names.index(axis)]
                for axis in COST_AXES
            }
            batch = BatchCostModel(self.model, self._system, axis_values,
                                   variants=variants)
            cost_indices, _ = self.grid.axis_subgrid(COST_AXES)
            cost_cycles = batch.cycles(cost_indices)
            cycles = np.take(cost_cycles, self._cost_fold)
            logic_cells, fit_ok = self._fit.evaluate(cfu_report)
            front = pareto_front_indices(cycles, logic_cells, fit_ok)
            self._planes[family] = FamilyPlane(
                family=family, cycles=cycles, logic_cells=logic_cells,
                fit_ok=fit_ok, front_indices=front)
        return self._planes[family]

    def front_points(self, family):
        """The exact front as :class:`DsePoint`s, cycles-ascending."""
        plane = self.family_plane(family)
        return [DsePoint(family=family,
                         parameters=self.grid.point(i),
                         cycles=float(plane.cycles[i]),
                         logic_cells=int(plane.logic_cells[i]))
                for i in plane.front_indices]

    def evaluate_points(self, parameters_list, family):
        """Vector-evaluate arbitrary points (the test/bench crosscheck)."""
        plane = self.family_plane(family)
        flat = np.array([self.grid.flat_index(p) for p in parameters_list],
                        dtype=np.intp)
        return (plane.cycles[flat], plane.logic_cells[flat],
                plane.fit_ok[flat])


@dataclass
class ExhaustiveResult:
    """All requested family planes plus sweep bookkeeping."""

    sweeper: ExhaustiveSweeper
    planes: dict
    seconds: float = 0.0
    points_evaluated: int = 0

    @property
    def points_per_second(self):
        return self.points_evaluated / self.seconds if self.seconds else 0.0

    def front_points(self, family):
        return self.sweeper.front_points(family)

    def front_metrics(self, family):
        return self.planes[family].front_metrics()

    def to_result(self):
        """The fronts as a :class:`~repro.dse.runner.DseResult`."""
        result = DseResult()
        for family in self.planes:
            for point in self.front_points(family):
                result.add(point)
        return result

    def summary(self):
        lines = [f"exhaustive sweep: {self.points_evaluated:,} points "
                 f"in {self.seconds:.2f}s "
                 f"({self.points_per_second:,.0f} points/sec)"]
        for family, plane in self.planes.items():
            lines.append(
                f"{family}: {plane.fit_ok.size:,} evaluated, "
                f"{plane.feasible_count:,} fit, "
                f"{len(plane.front_indices)} Pareto-optimal")
        return "\n".join(lines)


def sweep(model=None, board=None, families=CFU_FAMILIES, space=None,
          sweeper=None):
    """Evaluate the full space for every family; exact fronts included."""
    sweeper = sweeper or ExhaustiveSweeper(model=model, board=board,
                                           space=space)
    start = time.monotonic()
    planes = {family: sweeper.family_plane(family) for family in families}
    seconds = time.monotonic() - start
    return ExhaustiveResult(sweeper=sweeper, planes=planes, seconds=seconds,
                            points_evaluated=sweeper.grid.size * len(planes))


def search_regret(exact_metrics, search_metrics, reference=None):
    """Hypervolume regret of a search front vs the exact front.

    0.0 means the search recovered the exact front's hypervolume; 1.0
    means it captured none of it.  The reference point defaults to twice
    the componentwise maximum over both fronts, so every point counts.
    """
    exact_metrics = [tuple(m) for m in exact_metrics]
    search_metrics = [tuple(m) for m in search_metrics]
    if not exact_metrics:
        return 0.0
    if reference is None:
        everything = exact_metrics + search_metrics
        reference = (2.0 * max(m[0] for m in everything),
                     2.0 * max(m[1] for m in everything))
    exact_hv = hypervolume_2d(exact_metrics, reference)
    if exact_hv <= 0.0:
        return 0.0
    search_hv = hypervolume_2d(search_metrics, reference)
    return max(0.0, 1.0 - search_hv / exact_hv)


def scalar_reference_points(model, board, space, family):
    """Oracle enumeration via the scalar evaluate_design (small spaces).

    Returns ``{flat_index: DsePoint or None}`` in grid order — the
    ground truth the vectorized plane is compared against bit-for-bit.
    """
    return {index: evaluate_design(model, board, parameters, family)
            for index, parameters in enumerate(space.grid())}


def run_exhaustive_service(service, model=None, board=None,
                           families=CFU_FAMILIES, space=None, sweeper=None,
                           chunk=DEFAULT_CHUNK, owner="fig7-exhaustive",
                           worker_id="tensor-sweeper", study_prefix="exact"):
    """Stream a whole-space sweep through the study service's trial store.

    One study per family is created with the ``"exhaustive"`` (grid)
    algorithm; the vectorized planes are computed up front and then
    completed through the normal lease protocol in chunks of ``chunk``
    trials, so the sweep is persisted, resumable after a crash, and its
    fronts are served by the standard pareto routes.  Returns
    ``(ExhaustiveResult, [ServiceStudy, ...])``.
    """
    from .service import ACTIVE, ServiceError, space_to_spec

    sweeper = sweeper or ExhaustiveSweeper(model=model, board=board,
                                           space=space)
    result = sweep(sweeper=sweeper, families=families)
    studies = []
    for family in families:
        plane = result.planes[family]
        study_id = f"{study_prefix}-{family}"
        config = {
            "owner": owner, "study_id": study_id,
            "budget": sweeper.grid.size, "algorithm": "exhaustive",
            "batch": int(chunk), "max_inflight": int(chunk),
            "family": family, "seed": 0,
            "space": space_to_spec(sweeper.space),
        }
        try:
            study = service.create_study(config)
        except ServiceError as error:
            if error.status != 409:
                raise
            study = service.get_study(owner, study_id)  # resume
        while study.state == ACTIVE:
            granted = study.claim(worker_id, chunk)
            if not granted:
                break
            completions = []
            for record in granted:
                index = sweeper.grid.flat_index(record.parameters)
                item = {"trial_id": record.trial_id,
                        "lease_token": record.lease_token,
                        "worker_id": worker_id}
                if plane.fit_ok[index]:
                    item["metrics"] = {
                        "cycles": float(plane.cycles[index]),
                        "logic_cells": int(plane.logic_cells[index]),
                    }
                else:
                    item["infeasible"] = True
                completions.append(item)
            study.complete_batch(completions)
        studies.append(study)
    return result, studies
