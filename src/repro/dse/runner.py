"""The Fig. 7 experiment: automated DSE of CPU + CFU configurations.

Three CFU families are explored over the same VexRiscv space on the
MobileNetV2 workload:

- ``"none"``  — the CPU alone (green curve);
- ``"cfu1"``  — the large MNV2 CFU from Section III-A (blue curve);
- ``"cfu2"``  — the small KWS SIMD CFU from Section III-B (red curve).

Latency comes from the cycle estimator (the Verilator stand-in), and
resources from the netlist estimator (the yosys stand-in), exactly the
two oracles the paper wires into Vizier.  The total space is
3 x 31,104 = 93,312 points ("approximately 93,000").

Evaluation runs on the parallel engine: trials are suggested in
fixed-size batches, served from a content-addressed
:class:`~repro.dse.cache.EvaluationCache` when warm, and cache misses
are sharded across a :class:`~repro.dse.pool.WorkerPool`.  The batch
size is deliberately independent of the worker count, so the same seed
produces the same Pareto fronts whether the run is serial or parallel.
Every trial is recorded as a span (family, cache-hit flag, fit outcome)
on a :class:`~repro.core.tracing.Tracer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..accel.kws.resources import cfu2_resources
from ..accel.mnv2.resources import stage_resources
from ..boards import ARTY_A7_35T, fit
from ..core.tracing import Tracer
from ..kernels.conv1x1 import OverlapInput
from ..kernels.kws import kws_variants
from ..kernels.reference import reference_variants
from ..models import load
from ..perf.estimator import estimate_inference
from ..soc import Soc
from .algorithms import RegularizedEvolution
from .cache import MISS, EvaluationCache, cache_key
from .pareto import pareto_front
from .pool import WorkerPool
from .space import point_to_cpu_config, vexriscv_space
from .study import MetricGoal, Study

CFU_FAMILIES = ("none", "cfu1", "cfu2")

# Opt-in fourth family: the Winograd F(2x2,3x3) CFU.  Kept out of
# CFU_FAMILIES so the paper's 93,312-point space (and every recorded
# study) is unchanged; sweeps pass this tuple explicitly to place the
# Winograd ladder on the same axes as the stock curves.
ALL_CFU_FAMILIES = CFU_FAMILIES + ("winograd",)

# Trials suggested (and evaluated) per scheduling round.  Fixed — NOT a
# function of the worker count — so serial and parallel runs see the
# same algorithm state at every suggestion and stay bit-identical.
DEFAULT_BATCH = 8


def family_extras(family):
    """(extra kernel variants, CFU resource report) per family."""
    if family == "none":
        from ..rtl.synth import ResourceReport

        return (), ResourceReport()
    if family == "cfu1":
        return (OverlapInput(),), stage_resources("overlap_input")
    if family == "cfu2":
        return tuple(kws_variants(postproc=True, specialized=True)), \
            cfu2_resources()
    if family == "winograd":
        from ..accel.winograd.resources import winograd_resources
        from ..kernels.winograd import winograd_variants

        return tuple(winograd_variants()), winograd_resources()
    raise KeyError(f"unknown CFU family {family!r}")


@dataclass
class DsePoint:
    family: str
    parameters: dict
    cycles: float
    logic_cells: int

    @property
    def metrics(self):
        return (self.cycles, self.logic_cells)

    def key(self):
        """Value identity: the configuration, not the object.  Two
        evaluations of one config — possibly in different processes, or
        round-tripped through the persistent cache — share a key."""
        return (self.family, tuple(sorted(self.parameters.items())))

    def to_record(self):
        return {"family": self.family, "parameters": dict(self.parameters),
                "cycles": self.cycles, "logic_cells": self.logic_cells}

    @classmethod
    def from_record(cls, record):
        return cls(family=record["family"],
                   parameters=dict(record["parameters"]),
                   cycles=float(record["cycles"]),
                   logic_cells=int(record["logic_cells"]))


@dataclass
class EvalOutcome:
    """One evaluation as seen by the engine: the point (or None for "no
    fit"), whether the cache served it, and how long it took."""

    point: object
    cache_hit: bool
    seconds: float = 0.0


@dataclass
class DseResult:
    points: list = field(default_factory=list)
    _keys: set = field(default_factory=set, repr=False, compare=False)

    def __post_init__(self):
        self._keys = {p.key() for p in self.points}

    def add(self, point):
        """Record ``point`` unless an equal-valued point is present.

        Dedup is by value, not ``id()``: points that round-trip through
        worker processes or the persistent cache come back as distinct
        objects that must still count once.
        """
        key = point.key()
        if key not in self._keys:
            self._keys.add(key)
            self.points.append(point)
        return self

    def family_points(self, family):
        return [p for p in self.points if p.family == family]

    def family_front(self, family):
        # Distinct configurations may share identical metrics (e.g. cache
        # ways with no cache); keep one representative per metric point.
        # The representative is chosen by value (smallest config key),
        # never by insertion order — service runs complete trials in a
        # worker-dependent order, and the front must not depend on it.
        unique = {}
        for point in self.family_points(family):
            existing = unique.get(point.metrics)
            if existing is None or point.key() < existing.key():
                unique[point.metrics] = point
        return pareto_front(list(unique.values()), key=lambda p: p.metrics)

    def overall_front(self):
        return pareto_front(self.points, key=lambda p: p.metrics)

    def to_records(self):
        """Wire/disk form: one plain-JSON record per point, in insertion
        order.  Round-trips through :meth:`from_records` by value."""
        return [p.to_record() for p in self.points]

    @classmethod
    def from_records(cls, records):
        """Rebuild from :meth:`to_records` output (e.g. fetched from the
        study service).  Dedup is by value — records that name the same
        configuration twice count once, exactly like :meth:`add`."""
        result = cls()
        for record in records:
            result.add(DsePoint.from_record(record))
        return result

    def summary(self):
        lines = []
        overall = {p.key() for p in self.overall_front()}
        for family in CFU_FAMILIES:
            front = self.family_front(family)
            lines.append(f"{family}: {len(self.family_points(family))} evaluated, "
                         f"{len(front)} Pareto-optimal")
            for p in front:
                star = " *" if p.key() in overall else ""
                lines.append(
                    f"  {p.cycles:>14,.0f} cyc  {p.logic_cells:>6} cells{star}"
                )
        return "\n".join(lines)


def evaluate_design(model, board, parameters, family):
    """Evaluate one (cpu point, family) to a DsePoint; None = no fit.

    Pure function of its arguments — safe to run in worker processes.
    """
    cpu = point_to_cpu_config(parameters)
    extras, cfu_resources = family_extras(family)
    soc = Soc(board, cpu)
    fit_result = fit(board, soc.resources(), cfu_resources)
    if not fit_result.ok:
        return None
    variants = reference_variants().extended(*extras)
    estimate = estimate_inference(model, soc.system_config(), variants)
    return DsePoint(
        family=family,
        parameters=dict(parameters),
        cycles=estimate.total_cycles,
        logic_cells=fit_result.usage.logic_cells,
    )


# Per-worker-process state, seeded once by the pool initializer (cheap
# under fork: the objects are inherited, not pickled).
_WORKER_STATE = {}


def _init_fig7_worker(model, board, compile_cache_dir=None):
    _WORKER_STATE["model"] = model
    _WORKER_STATE["board"] = board
    if compile_cache_dir is not None:
        # Point the process-wide code cache at the shared directory so
        # every simulation-backed evaluation in this worker binds
        # tier-2 blocks and compiled RTL instead of regenerating them.
        from ..core.codecache import configure

        configure(compile_cache_dir)


def _fig7_worker_evaluate(task):
    parameters, family = task
    start = time.monotonic()
    point = evaluate_design(_WORKER_STATE["model"], _WORKER_STATE["board"],
                            parameters, family)
    return point, time.monotonic() - start


class Fig7Evaluator:
    """Evaluates one (cpu point, family) to (cycles, cells); None = no fit.

    Backed by an :class:`EvaluationCache` (in-memory by default, or a
    persistent directory) and a :class:`Tracer` that counts cache
    hits/misses and fit rejections.
    """

    def __init__(self, model=None, board=ARTY_A7_35T, cache=None, tracer=None,
                 sim_backend="auto", compile_cache=None):
        self.model = model or load("mobilenet_v2", width_multiplier=0.75,
                                   num_classes=100)
        self.board = board
        self.cache = cache if cache is not None else EvaluationCache()
        self.tracer = tracer if tracer is not None else Tracer()
        #: ISA execution tier for simulation-backed evaluation steps
        #: (see :data:`repro.cpu.machine.SIM_BACKENDS`).  The stock
        #: analytic oracle performs no ISA simulation, so this only
        #: affects evaluators that cross-validate on the simulator.
        self.sim_backend = sim_backend
        #: Persistent tier-2/RTL compile cache for simulation-backed
        #: evaluation (a CodeCache, a directory path, or True for the
        #: process default); the analytic oracle itself never compiles.
        from ..emu.renode import _resolve_compile_cache

        self.compile_cache = _resolve_compile_cache(compile_cache)

    def cache_key(self, parameters, family):
        return cache_key(parameters, family,
                         model=getattr(self.model, "name", None),
                         board=self.board.name)

    def evaluate(self, parameters, family):
        return self.evaluate_batch([(parameters, family)])[0].point

    def evaluate_batch(self, tasks, pool=None):
        """Evaluate ``[(parameters, family), ...]``; cache hits are
        served in-process, misses shard across ``pool`` (or run inline
        when ``pool`` is None).  Returns one :class:`EvalOutcome` per
        task, in task order."""
        outcomes = [None] * len(tasks)
        pending = {}  # key -> indices awaiting that evaluation
        for index, (parameters, family) in enumerate(tasks):
            key = self.cache_key(parameters, family)
            cached = self.cache.get(key)
            if cached is not MISS or key in pending:
                # warm cache, or a duplicate of an earlier miss in this
                # same batch: either way no new evaluation is spent
                if cached is not MISS:
                    self.tracer.count("cache_hit")
                    outcomes[index] = EvalOutcome(point=cached, cache_hit=True)
                else:
                    pending[key].append(index)
            else:
                pending[key] = [index]
        if pending:
            keys = list(pending)
            jobs = [tasks[pending[key][0]] for key in keys]
            if pool is not None:
                results = pool.map(_fig7_worker_evaluate, jobs)
            else:
                results = [self._timed_evaluate(parameters, family)
                           for parameters, family in jobs]
            for key, (point, seconds) in zip(keys, results):
                self.cache.put(key, point)
                indices = pending[key]
                self.tracer.count("cache_miss")
                if point is None:
                    self.tracer.count("fit_reject")
                outcomes[indices[0]] = EvalOutcome(point=point,
                                                   cache_hit=False,
                                                   seconds=seconds)
                for index in indices[1:]:  # in-batch duplicates
                    self.tracer.count("cache_hit")
                    outcomes[index] = EvalOutcome(point=point, cache_hit=True)
        return outcomes

    def _timed_evaluate(self, parameters, family):
        start = time.monotonic()
        point = evaluate_design(self.model, self.board, parameters, family)
        return point, time.monotonic() - start

    def _evaluate(self, parameters, family):
        return evaluate_design(self.model, self.board, parameters, family)


def run_fig7(trials_per_family=120, seed=0, evaluator=None,
             algorithm_factory=None, workers=1, batch=None, cache_dir=None,
             tracer=None, sim_backend="auto", compile_cache_dir=None):
    """Run the three studies and return a :class:`DseResult`.

    ``workers`` shards each suggestion batch across processes;
    ``batch`` (default :data:`DEFAULT_BATCH`) is fixed independently of
    ``workers`` so the same seed yields identical Pareto fronts serial
    or parallel.  ``cache_dir`` persists evaluations across runs — a
    warm rerun performs zero fresh evaluations.  ``tracer`` (or the
    evaluator's own) collects per-trial spans, per-family progress
    events, and cache/fit counters.  ``sim_backend`` picks the ISA
    execution tier for simulation-backed evaluators (the stock analytic
    oracle simulates nothing, so for it the knob is recorded but inert);
    it is validated eagerly and stamped on the run trace.
    ``compile_cache_dir`` shares one persistent tier-2/RTL compile
    cache across every worker process, so a firmware common to many
    trials compiles once for the whole fleet.
    """
    from ..cpu.machine import SIM_BACKENDS

    if sim_backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown sim backend {sim_backend!r}"
            f" (expected one of {', '.join(SIM_BACKENDS)})")
    if evaluator is None:
        tracer = tracer if tracer is not None else Tracer()
        evaluator = Fig7Evaluator(cache=EvaluationCache(cache_dir),
                                  tracer=tracer, sim_backend=sim_backend)
    else:
        if cache_dir is not None:
            evaluator.cache = EvaluationCache(cache_dir)
        if tracer is not None:
            evaluator.tracer = tracer  # one tracer owns the whole run
        else:
            tracer = evaluator.tracer
        evaluator.sim_backend = sim_backend
    algorithm_factory = algorithm_factory or (lambda: RegularizedEvolution())
    batch = DEFAULT_BATCH if batch is None else batch
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if compile_cache_dir is not None:
        from ..core.codecache import CodeCache

        evaluator.compile_cache = CodeCache(str(compile_cache_dir))
    result = DseResult()
    pool = None
    if workers > 1:
        pool = WorkerPool(workers, initializer=_init_fig7_worker,
                          initargs=(evaluator.model, evaluator.board,
                                    compile_cache_dir))
    try:
        for family in CFU_FAMILIES:
            tracer.event("family_start", family=family,
                         budget=trials_per_family, sim_backend=sim_backend)
            study = Study(
                space=vexriscv_space(),
                goals=[MetricGoal("cycles"), MetricGoal("logic_cells")],
                algorithm=algorithm_factory(),
                name=f"fig7-{family}",
                seed=seed,
            )
            remaining = trials_per_family
            while remaining > 0:
                trials = study.suggest(min(batch, remaining))
                outcomes = evaluator.evaluate_batch(
                    [(trial.parameters, family) for trial in trials],
                    pool=pool,
                )
                for trial, outcome in zip(trials, outcomes):
                    point = outcome.point
                    tracer.record_span(
                        "trial", outcome.seconds, study=study.name,
                        trial=trial.trial_id, family=family,
                        cache_hit=outcome.cache_hit, fit=point is not None,
                    )
                    if point is None:
                        trial.complete(infeasible=True)
                    else:
                        trial.complete({"cycles": point.cycles,
                                        "logic_cells": point.logic_cells})
                        result.add(point)  # revisited configs count once
                    remaining -= 1
                tracer.event("progress", family=family,
                             completed=trials_per_family - remaining,
                             budget=trials_per_family)
            tracer.event("family_done", family=family,
                         evaluated=len(result.family_points(family)),
                         front=len(result.family_front(family)))
    finally:
        if pool is not None:
            pool.close()
    return result


def total_space_size():
    return len(CFU_FAMILIES) * vexriscv_space().size()
