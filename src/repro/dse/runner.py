"""The Fig. 7 experiment: automated DSE of CPU + CFU configurations.

Three CFU families are explored over the same VexRiscv space on the
MobileNetV2 workload:

- ``"none"``  — the CPU alone (green curve);
- ``"cfu1"``  — the large MNV2 CFU from Section III-A (blue curve);
- ``"cfu2"``  — the small KWS SIMD CFU from Section III-B (red curve).

Latency comes from the cycle estimator (the Verilator stand-in), and
resources from the netlist estimator (the yosys stand-in), exactly the
two oracles the paper wires into Vizier.  The total space is
3 x 31,104 = 93,312 points ("approximately 93,000").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accel.kws.resources import cfu2_resources
from ..accel.mnv2.resources import stage_resources
from ..boards import ARTY_A7_35T, fit
from ..kernels.conv1x1 import OverlapInput
from ..kernels.kws import kws_variants
from ..kernels.reference import reference_variants
from ..models import load
from ..perf.estimator import estimate_inference
from ..soc import Soc
from .algorithms import RegularizedEvolution
from .pareto import pareto_front
from .space import point_to_cpu_config, vexriscv_space
from .study import MetricGoal, Study

CFU_FAMILIES = ("none", "cfu1", "cfu2")


def family_extras(family):
    """(extra kernel variants, CFU resource report) per family."""
    if family == "none":
        from ..rtl.synth import ResourceReport

        return (), ResourceReport()
    if family == "cfu1":
        return (OverlapInput(),), stage_resources("overlap_input")
    if family == "cfu2":
        return tuple(kws_variants(postproc=True, specialized=True)), \
            cfu2_resources()
    raise KeyError(f"unknown CFU family {family!r}")


@dataclass
class DsePoint:
    family: str
    parameters: dict
    cycles: float
    logic_cells: int

    @property
    def metrics(self):
        return (self.cycles, self.logic_cells)


@dataclass
class DseResult:
    points: list = field(default_factory=list)

    def family_points(self, family):
        return [p for p in self.points if p.family == family]

    def family_front(self, family):
        # Distinct configurations may share identical metrics (e.g. cache
        # ways with no cache); keep one representative per metric point.
        unique = {}
        for point in self.family_points(family):
            unique.setdefault(point.metrics, point)
        return pareto_front(list(unique.values()), key=lambda p: p.metrics)

    def overall_front(self):
        return pareto_front(self.points, key=lambda p: p.metrics)

    def summary(self):
        lines = []
        overall = {id(p) for p in self.overall_front()}
        for family in CFU_FAMILIES:
            front = self.family_front(family)
            lines.append(f"{family}: {len(self.family_points(family))} evaluated, "
                         f"{len(front)} Pareto-optimal")
            for p in front:
                star = " *" if id(p) in overall else ""
                lines.append(
                    f"  {p.cycles:>14,.0f} cyc  {p.logic_cells:>6} cells{star}"
                )
        return "\n".join(lines)


class Fig7Evaluator:
    """Evaluates one (cpu point, family) to (cycles, cells); None = no fit."""

    def __init__(self, model=None, board=ARTY_A7_35T):
        self.model = model or load("mobilenet_v2", width_multiplier=0.75,
                                   num_classes=100)
        self.board = board
        self._cache = {}

    def evaluate(self, parameters, family):
        key = (tuple(sorted(parameters.items())), family)
        if key in self._cache:
            return self._cache[key]
        result = self._evaluate(parameters, family)
        self._cache[key] = result
        return result

    def _evaluate(self, parameters, family):
        cpu = point_to_cpu_config(parameters)
        if cpu.multiplier == "none":
            # TFLM int8 kernels fundamentally need multiplication; a
            # mul-less CPU falls back to software emulation (modeled),
            # but a CFU-equipped design still requires it for addressing.
            pass
        extras, cfu_resources = family_extras(family)
        soc = Soc(self.board, cpu)
        fit_result = fit(self.board, soc.resources(), cfu_resources)
        if not fit_result.ok:
            return None
        variants = reference_variants().extended(*extras)
        estimate = estimate_inference(self.model, soc.system_config(), variants)
        return DsePoint(
            family=family,
            parameters=dict(parameters),
            cycles=estimate.total_cycles,
            logic_cells=fit_result.usage.logic_cells,
        )


def run_fig7(trials_per_family=120, seed=0, evaluator=None,
             algorithm_factory=None):
    """Run the three studies and return a :class:`DseResult`."""
    evaluator = evaluator or Fig7Evaluator()
    algorithm_factory = algorithm_factory or (lambda: RegularizedEvolution())
    result = DseResult()
    seen = set()
    for family in CFU_FAMILIES:
        study = Study(
            space=vexriscv_space(),
            goals=[MetricGoal("cycles"), MetricGoal("logic_cells")],
            algorithm=algorithm_factory(),
            name=f"fig7-{family}",
            seed=seed,
        )

        def evaluate(parameters, family=family):
            point = evaluator.evaluate(parameters, family)
            if point is None:
                return None
            if id(point) not in seen:  # revisited configs count once
                seen.add(id(point))
                result.points.append(point)
            return {"cycles": point.cycles, "logic_cells": point.logic_cells}

        study.run(evaluate, budget=trials_per_family)
    return result


def total_space_size():
    return len(CFU_FAMILIES) * vexriscv_space().size()
