"""Design-space exploration: the Open Source Vizier stand-in."""

from .algorithms import GridSearch, RandomSearch, RegularizedEvolution, TpeLite
from .cache import CACHE_SCHEMA_VERSION, MISS, EvaluationCache, cache_key
from .characterize import (
    OPERAND_CLASSES,
    CharacterizationTarget,
    ClassProfile,
    LatencyEnvelope,
    characterization_targets,
    characterize_cfu,
)
from .exhaustive import (
    ExhaustiveResult,
    ExhaustiveSweeper,
    FamilyPlane,
    GridTensors,
    VectorizedFit,
    pareto_front_indices,
    run_exhaustive_service,
    search_regret,
    sweep,
)
from .pareto import dominates, hypervolume_2d, pareto_front
from .pool import MultiprocessingBackend, SerialBackend, WorkerPool, WorkerPoolError
from .runner import (
    CFU_FAMILIES,
    DEFAULT_BATCH,
    DsePoint,
    DseResult,
    EvalOutcome,
    Fig7Evaluator,
    evaluate_design,
    run_fig7,
    total_space_size,
)
from .service import (
    DEFAULT_LEASE_SECONDS,
    DseHttpServer,
    DseService,
    FaultInjector,
    ServiceError,
    ServiceStudy,
    ServiceThread,
    serve,
)
from .space import CACHE_SIZES, Parameter, ParameterSpace, point_to_cpu_config, vexriscv_space
from .store import STORE_SCHEMA_VERSION, StudyStore, TrialRecord
from .study import MAXIMIZE, MINIMIZE, MetricGoal, Study, Trial
from .vizier import StudyClient, VizierError, VizierService
from .worker import (
    ClientError,
    ServiceClient,
    ServiceUnavailable,
    StaleLeaseError,
    WorkerFleet,
    create_fig7_studies,
    fetch_result,
    run_fig7_service,
    run_worker,
    wait_for_studies,
)

__all__ = [
    "CACHE_SCHEMA_VERSION", "CACHE_SIZES", "CFU_FAMILIES",
    "CharacterizationTarget", "ClassProfile", "ClientError",
    "LatencyEnvelope", "OPERAND_CLASSES", "characterization_targets",
    "characterize_cfu",
    "DEFAULT_BATCH", "DEFAULT_LEASE_SECONDS", "DseHttpServer", "DsePoint",
    "DseResult", "DseService", "EvalOutcome", "EvaluationCache",
    "ExhaustiveResult", "ExhaustiveSweeper", "FamilyPlane", "FaultInjector",
    "Fig7Evaluator", "GridSearch", "GridTensors", "MAXIMIZE", "MINIMIZE",
    "MISS", "MetricGoal", "MultiprocessingBackend", "Parameter",
    "ParameterSpace", "RandomSearch", "RegularizedEvolution",
    "STORE_SCHEMA_VERSION", "VectorizedFit",
    "SerialBackend", "ServiceClient", "ServiceError", "ServiceStudy",
    "ServiceThread", "ServiceUnavailable", "StaleLeaseError", "Study",
    "StudyClient", "StudyStore", "TpeLite", "Trial", "TrialRecord",
    "VizierError", "VizierService", "WorkerFleet", "WorkerPool",
    "WorkerPoolError", "cache_key", "create_fig7_studies", "dominates",
    "evaluate_design", "fetch_result", "hypervolume_2d", "pareto_front",
    "pareto_front_indices", "point_to_cpu_config", "run_exhaustive_service",
    "run_fig7", "run_fig7_service", "run_worker", "search_regret", "serve",
    "sweep", "total_space_size", "vexriscv_space", "wait_for_studies",
]
