"""Design-space exploration: the Open Source Vizier stand-in."""

from .algorithms import RandomSearch, RegularizedEvolution, TpeLite
from .cache import CACHE_SCHEMA_VERSION, MISS, EvaluationCache, cache_key
from .pareto import dominates, hypervolume_2d, pareto_front
from .pool import MultiprocessingBackend, SerialBackend, WorkerPool, WorkerPoolError
from .runner import (
    CFU_FAMILIES,
    DEFAULT_BATCH,
    DsePoint,
    DseResult,
    EvalOutcome,
    Fig7Evaluator,
    evaluate_design,
    run_fig7,
    total_space_size,
)
from .space import CACHE_SIZES, Parameter, ParameterSpace, point_to_cpu_config, vexriscv_space
from .study import MAXIMIZE, MINIMIZE, MetricGoal, Study, Trial
from .vizier import StudyClient, VizierError, VizierService

__all__ = [
    "CACHE_SCHEMA_VERSION", "CACHE_SIZES", "CFU_FAMILIES", "DEFAULT_BATCH",
    "DsePoint", "DseResult", "EvalOutcome", "EvaluationCache",
    "Fig7Evaluator", "MAXIMIZE", "MINIMIZE", "MISS", "MetricGoal",
    "MultiprocessingBackend", "Parameter", "ParameterSpace", "RandomSearch",
    "RegularizedEvolution", "SerialBackend", "Study", "TpeLite", "Trial",
    "WorkerPool", "WorkerPoolError", "cache_key", "dominates",
    "evaluate_design", "hypervolume_2d", "pareto_front",
    "point_to_cpu_config", "run_fig7", "StudyClient", "VizierError",
    "VizierService", "total_space_size", "vexriscv_space",
]
