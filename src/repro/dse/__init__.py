"""Design-space exploration: the Open Source Vizier stand-in."""

from .algorithms import RandomSearch, RegularizedEvolution, TpeLite
from .pareto import dominates, hypervolume_2d, pareto_front
from .runner import CFU_FAMILIES, DseResult, Fig7Evaluator, run_fig7, total_space_size
from .space import CACHE_SIZES, Parameter, ParameterSpace, point_to_cpu_config, vexriscv_space
from .study import MAXIMIZE, MINIMIZE, MetricGoal, Study, Trial
from .vizier import StudyClient, VizierError, VizierService

__all__ = [
    "CACHE_SIZES", "CFU_FAMILIES", "DseResult", "Fig7Evaluator", "MAXIMIZE",
    "MINIMIZE", "MetricGoal", "Parameter", "ParameterSpace", "RandomSearch",
    "RegularizedEvolution", "Study", "TpeLite", "Trial", "dominates",
    "hypervolume_2d", "pareto_front", "point_to_cpu_config", "run_fig7",
    "StudyClient", "VizierError", "VizierService",
    "total_space_size", "vexriscv_space",
]
