"""Suggestion algorithms for the Vizier stand-in.

Four algorithms with the same ``propose(study)`` interface:

- :class:`RandomSearch` — the baseline Vizier offers.
- :class:`RegularizedEvolution` — tournament-select a parent from the
  recent population, mutate one knob (Real et al.); extended to
  multi-objective via Pareto-rank-then-crowding selection.
- :class:`TpeLite` — a lightweight tree-structured Parzen estimator:
  categorical densities fitted over the elite/rest split, proposals
  sampled from the elite density.
- :class:`GridSearch` — deterministic exhaustive enumeration in
  ``ParameterSpace.grid()`` order, the suggestion side of the
  tensorized whole-space sweep (:mod:`repro.dse.exhaustive`).
"""

from __future__ import annotations

import math
from collections import defaultdict

from .pareto import pareto_front


class SuggestionAlgorithm:
    """Interface: bound to a study, proposes parameter dicts."""

    def bind(self, study):
        """Called once when attached to a study (stateful algorithms
        may initialize here)."""

    def propose(self, study):
        raise NotImplementedError


class RandomSearch(SuggestionAlgorithm):
    """Uniform sampling of the space."""

    def bind(self, study):
        pass

    def propose(self, study):
        return study.space.sample(study.rng)


class GridSearch(SuggestionAlgorithm):
    """Exhaustive enumeration of the space in ``grid()`` order.

    Proposal ``k`` (0-based) is exactly the ``k``-th point of
    ``space.grid()`` — a stable, seed-independent order, so the flat
    grid index of a trial is ``trial_id - 1``.  This is what lets the
    vectorized sweep stream precomputed whole-space results through the
    service's trial store: suggestions are positional, never adaptive.
    Replaying a persisted study re-enumerates from the start and
    reproduces every suggestion verbatim.
    """

    def bind(self, study):
        self._points = study.space.grid()

    def propose(self, study):
        try:
            return next(self._points)
        except StopIteration:
            raise ValueError(
                f"grid exhausted: study {study.name!r} budget exceeds "
                f"the space size {study.space.size()}") from None


class RegularizedEvolution(SuggestionAlgorithm):
    """Aging evolution with Pareto-aware tournament selection."""

    def __init__(self, population_size=48, tournament_size=8, warmup=24,
                 mutations=1):
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.warmup = warmup
        self.mutations = mutations

    def bind(self, study):
        pass

    def propose(self, study):
        completed = study.completed_trials()
        if len(completed) < self.warmup:
            return study.space.sample(study.rng)
        population = completed[-self.population_size:]
        tournament = study.rng.sample(
            population, min(self.tournament_size, len(population))
        )
        front = pareto_front(tournament, key=study.metric_tuple)
        parent = study.rng.choice(front)
        return study.space.mutate(parent.parameters, study.rng, self.mutations)


class TpeLite(SuggestionAlgorithm):
    """Categorical TPE: sample each knob from the elite density l(x),
    weighted against the non-elite density g(x)."""

    def __init__(self, gamma=0.25, warmup=20, candidates=16, smoothing=1.0):
        self.gamma = gamma
        self.warmup = warmup
        self.candidates = candidates
        self.smoothing = smoothing

    def bind(self, study):
        pass

    def propose(self, study):
        completed = study.completed_trials()
        if len(completed) < self.warmup:
            return study.space.sample(study.rng)
        ranked = sorted(completed, key=study.metric_tuple)
        cut = max(1, int(math.ceil(self.gamma * len(ranked))))
        elite, rest = ranked[:cut], ranked[cut:]
        best, best_score = None, -math.inf
        for _ in range(self.candidates):
            candidate = self._sample_from(elite, study)
            score = (self._log_density(candidate, elite, study)
                     - self._log_density(candidate, rest, study))
            if score > best_score:
                best, best_score = candidate, score
        return best

    def _counts(self, trials, parameter):
        counts = defaultdict(float)
        for trial in trials:
            counts[trial.parameters[parameter.name]] += 1.0
        return counts

    def _sample_from(self, trials, study):
        point = {}
        for parameter in study.space:
            counts = self._counts(trials, parameter)
            weights = [counts[v] + self.smoothing for v in parameter.values]
            point[parameter.name] = study.rng.choices(
                parameter.values, weights=weights
            )[0]
        return point

    def _log_density(self, point, trials, study):
        if not trials:
            return 0.0
        total = 0.0
        for parameter in study.space:
            counts = self._counts(trials, parameter)
            numer = counts[point[parameter.name]] + self.smoothing
            denom = len(trials) + self.smoothing * len(parameter.values)
            total += math.log(numer / denom)
        return total
