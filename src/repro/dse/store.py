"""Persistent sharded study store: crash-safe studies and trials on disk.

The layout is the :class:`~repro.dse.cache.EvaluationCache` layout,
promoted from evaluation outcomes to whole studies: every record is one
JSON file at a content-addressed path ``root/<key[:2]>/...``, written
atomically via temp-file + rename so a crash (or a concurrent reader)
can never observe a half-written record.  The key of a study is the
SHA-256 of ``(owner, study_id)``; the key of a trial is the SHA-256 of
``(study_key, trial_id)``:

```
store_root/
  <sk[:2]>/<sk>/study.json                    # config + lifecycle state
  <sk[:2]>/<sk>/trials/<tk[:2]>/<tk>.json     # one TrialRecord each
```

Unreadable, truncated, or foreign-schema trial files are *skipped and
counted*, never crashed on: a torn write loses at most that one record,
and the service re-issues the lost trial while every other completed
trial survives.  This is the property the fault-injection suite
(`tests/test_dse_service_faults.py`) exercises directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

STORE_SCHEMA_VERSION = 1

#: Trial lifecycle states (the lease protocol's state machine).
PENDING = "PENDING"        # suggested, waiting for a worker
CLAIMED = "CLAIMED"        # leased to a worker, deadline pending
COMPLETED = "COMPLETED"    # metrics (or the infeasible verdict) recorded

TRIAL_STATES = (PENDING, CLAIMED, COMPLETED)


def _digest(payload):
    document = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          default=repr)
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def study_key(owner, study_id):
    """Content address of a study: SHA-256 over (owner, study_id)."""
    return _digest({"schema": STORE_SCHEMA_VERSION, "owner": str(owner),
                    "study_id": str(study_id)})


def trial_key(study, trial_id):
    """Content address of a trial within its study."""
    return _digest({"schema": STORE_SCHEMA_VERSION, "study": study,
                    "trial_id": int(trial_id)})


def atomic_write_json(path, payload):
    """Publish ``payload`` at ``path`` atomically (temp file + rename)."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


@dataclass
class TrialRecord:
    """One trial as the store sees it: parameters, lease, and outcome.

    ``lease_deadline`` is a wall-clock instant (the service's injectable
    clock), persisted so a restarted server re-adopts in-flight trials:
    a live lease keeps its worker, an expired one is re-issued.
    """

    trial_id: int
    parameters: dict
    state: str = PENDING
    metrics: dict = field(default_factory=dict)
    infeasible: bool = False
    worker: str = ""
    lease_token: str = ""
    lease_deadline: float = 0.0
    cache_hit: bool = False
    seconds: float = 0.0

    def to_record(self):
        return {
            "schema": STORE_SCHEMA_VERSION,
            "trial_id": self.trial_id,
            "parameters": dict(self.parameters),
            "state": self.state,
            "metrics": dict(self.metrics),
            "infeasible": self.infeasible,
            "worker": self.worker,
            "lease_token": self.lease_token,
            "lease_deadline": self.lease_deadline,
            "cache_hit": self.cache_hit,
            "seconds": self.seconds,
        }

    @classmethod
    def from_record(cls, record):
        if not isinstance(record, dict):
            # valid JSON need not be a record document (a bare "0" is
            # valid JSON); garbage must read as unreadable, not crash
            raise ValueError(f"not a record document: {record!r}")
        if record.get("schema") != STORE_SCHEMA_VERSION:
            raise ValueError(f"foreign schema {record.get('schema')!r}")
        state = record["state"]
        if state not in TRIAL_STATES:
            raise ValueError(f"unknown trial state {state!r}")
        return cls(
            trial_id=int(record["trial_id"]),
            parameters=dict(record["parameters"]),
            state=state,
            metrics=dict(record["metrics"]),
            infeasible=bool(record["infeasible"]),
            worker=str(record.get("worker", "")),
            lease_token=str(record.get("lease_token", "")),
            lease_deadline=float(record.get("lease_deadline", 0.0)),
            cache_hit=bool(record.get("cache_hit", False)),
            seconds=float(record.get("seconds", 0.0)),
        )


class StudyStore:
    """Disk home for studies and their trials (may be ``None``-rooted).

    With ``root=None`` every write is a no-op and every read comes back
    empty — the service runs purely in memory (handy for tests and
    throwaway studies) with the exact same code path.
    """

    def __init__(self, root=None):
        self.root = os.fspath(root) if root is not None else None
        if self.root is not None:
            os.makedirs(self.root, exist_ok=True)

    @property
    def persistent(self):
        return self.root is not None

    # --- paths ------------------------------------------------------------------
    def _study_dir(self, key):
        return os.path.join(self.root, key[:2], key)

    def _trial_path(self, skey, trial_id):
        tkey = trial_key(skey, trial_id)
        return os.path.join(self._study_dir(skey), "trials", tkey[:2],
                            tkey + ".json")

    # --- studies ----------------------------------------------------------------
    def write_study(self, config):
        """Persist a study config document (atomic; idempotent)."""
        if self.root is None:
            return
        key = study_key(config["owner"], config["study_id"])
        record = {"schema": STORE_SCHEMA_VERSION}
        record.update(config)
        atomic_write_json(os.path.join(self._study_dir(key), "study.json"),
                          record)

    def load_study(self, owner, study_id):
        """The persisted config, or ``None`` if absent/unreadable."""
        if self.root is None:
            return None
        key = study_key(owner, study_id)
        return self._read_study(os.path.join(self._study_dir(key),
                                             "study.json"))

    @staticmethod
    def _read_study(path):
        try:
            with open(path) as handle:
                record = json.load(handle)
            if record.get("schema") != STORE_SCHEMA_VERSION:
                return None
            return record
        except (OSError, ValueError):
            return None

    def list_studies(self):
        """Every readable persisted study config, sorted by resource
        identity so resume order is deterministic."""
        if self.root is None:
            return []
        configs = []
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for key in sorted(os.listdir(shard_dir)):
                record = self._read_study(
                    os.path.join(shard_dir, key, "study.json"))
                if record is not None:
                    configs.append(record)
        configs.sort(key=lambda c: (c.get("owner", ""), c.get("study_id", "")))
        return configs

    # --- trials -----------------------------------------------------------------
    def write_trial(self, owner, study_id, record):
        """Persist one :class:`TrialRecord` (atomic publish)."""
        if self.root is None:
            return
        skey = study_key(owner, study_id)
        atomic_write_json(self._trial_path(skey, record.trial_id),
                          record.to_record())

    def load_trials(self, owner, study_id):
        """``(trials_by_id, unreadable_count)`` for one study.

        Torn, truncated, garbage, or foreign-schema files are counted
        and skipped — the service re-issues what was lost and keeps
        everything else.
        """
        if self.root is None:
            return {}, 0
        skey = study_key(owner, study_id)
        trials_dir = os.path.join(self._study_dir(skey), "trials")
        records, unreadable = {}, 0
        if not os.path.isdir(trials_dir):
            return records, unreadable
        for shard in sorted(os.listdir(trials_dir)):
            shard_dir = os.path.join(trials_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(shard_dir, name)) as handle:
                        record = TrialRecord.from_record(json.load(handle))
                except (OSError, ValueError, KeyError, TypeError):
                    unreadable += 1
                    continue
                records[record.trial_id] = record
        return records, unreadable
