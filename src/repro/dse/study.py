"""Study/Trial API modeled on Open Source Vizier.

A :class:`Study` owns a parameter space, one or more metric goals, and a
suggestion algorithm; clients pull suggestions, evaluate them (here: the
Verilator/yosys stand-ins), and complete the trials with measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .pareto import pareto_front

MINIMIZE = "minimize"
MAXIMIZE = "maximize"


@dataclass(frozen=True)
class MetricGoal:
    name: str
    goal: str = MINIMIZE

    def canonical(self, value):
        """Value transformed so that smaller is always better."""
        return value if self.goal == MINIMIZE else -value


@dataclass
class Trial:
    trial_id: int
    parameters: dict
    metrics: dict = field(default_factory=dict)
    completed: bool = False
    infeasible: bool = False

    def complete(self, metrics=None, infeasible=False):
        self.metrics = dict(metrics or {})
        self.completed = True
        self.infeasible = infeasible
        return self


class Study:
    """A named optimization study (the Vizier service object)."""

    def __init__(self, space, goals, algorithm=None, name="study", seed=0):
        from .algorithms import RandomSearch

        self.space = space
        self.goals = [g if isinstance(g, MetricGoal) else MetricGoal(g)
                      for g in goals]
        self.algorithm = algorithm or RandomSearch()
        self.algorithm.bind(self)
        self.name = name
        self.rng = random.Random(seed)
        self.trials = []

    # --- the service surface ----------------------------------------------------
    def suggest(self, count=1):
        """New pending trials chosen by the bound algorithm."""
        suggestions = []
        for _ in range(count):
            parameters = self.algorithm.propose(self)
            self.space.validate(parameters)
            trial = Trial(trial_id=len(self.trials) + 1, parameters=parameters)
            self.trials.append(trial)
            suggestions.append(trial)
        return suggestions

    def completed_trials(self, feasible_only=True):
        return [t for t in self.trials
                if t.completed and not (feasible_only and t.infeasible)]

    def metric_tuple(self, trial):
        return tuple(g.canonical(trial.metrics[g.name]) for g in self.goals)

    def best_trial(self):
        """Single-objective best (first goal) among feasible trials."""
        trials = self.completed_trials()
        if not trials:
            return None
        return min(trials, key=lambda t: self.metric_tuple(t)[0])

    def optimal_trials(self):
        """Pareto-optimal feasible trials across all goals."""
        return pareto_front(self.completed_trials(), key=self.metric_tuple)

    def run(self, evaluate, budget, batch=1, pool=None):
        """Convenience loop: suggest -> evaluate -> complete, ``budget`` times.

        ``evaluate(parameters)`` returns a metrics dict, or None for an
        infeasible point (e.g. the design does not fit the FPGA).

        With ``pool`` (a :class:`~repro.dse.pool.WorkerPool`) each
        suggested batch is sharded across workers; trials are still
        completed in suggestion order, so a run is deterministic for a
        given ``batch`` regardless of the worker count.  A worker
        exception propagates as
        :class:`~repro.dse.pool.WorkerPoolError` and leaves the failing
        batch's trials pending — the study fails loudly, never with a
        partial silent result.
        """
        remaining = budget
        while remaining > 0:
            trials = self.suggest(min(batch, remaining))
            parameters = [t.parameters for t in trials]
            if pool is not None:
                results = pool.map(evaluate, parameters)
            else:
                results = [evaluate(p) for p in parameters]
            for trial, metrics in zip(trials, results):
                if metrics is None:
                    trial.complete(infeasible=True)
                else:
                    trial.complete(metrics)
                remaining -= 1
        return self
