"""The DSE study service: an asyncio HTTP server over the Study engine.

The paper runs its ~93,000-point Fig. 7 exploration on OSS Vizier — a
long-running *service* with a study/trial wire API, not an in-process
loop.  This module is that shape for the reproduction:

- **Wire API** — ``POST /studies`` (create), ``POST .../suggest`` and
  ``POST /work`` (claim suggestion batches), ``POST
  .../trials/<id>/complete``, ``GET .../pareto`` and the chunked
  NDJSON ``GET .../pareto-stream``, study status/listing, and a
  ``GET /metrics`` snapshot of the shared
  :class:`~repro.core.metrics.MetricsRegistry`.

- **Lease protocol** — a claimed trial carries a lease token and a
  wall-clock deadline.  Completion must present the token; an expired
  lease is reclaimed and the trial re-issued *exactly once per expiry*
  (a fresh token), so a crashed worker's trial is recovered and its
  late completion is rejected as stale rather than double-counted.

- **Determinism barrier** — trials are suggested in fixed rounds of
  ``batch`` (the engine's :data:`~repro.dse.runner.DEFAULT_BATCH`
  discipline): round *N+1* is only suggested once round *N* is fully
  complete.  Suggestion-time algorithm state is therefore identical to
  the in-process engine regardless of worker count or completion
  order, which is what makes the service's Pareto fronts golden-equal
  to ``run_fig7``.

- **Crash-safe resume** — every suggestion, claim, and completion is
  persisted to a :class:`~repro.dse.store.StudyStore` before it is
  acknowledged.  A restarted server *replays* each study: suggestions
  are re-derived round by round (regenerating the algorithm's RNG
  state exactly), persisted completions are re-applied, live leases
  are re-adopted, and expired or torn ones are re-issued.

- **Fairness** — ``POST /work`` round-robins claims across active
  studies, and each study caps its in-flight leases at
  ``max_inflight``, so concurrent studies share one worker pool.

The server is single-threaded asyncio with synchronous handlers, so
every state transition is atomic with respect to the wire — no locks.
Failure injection for the test suite lives in :class:`FaultInjector`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from ..core.metrics import MetricsRegistry
from .algorithms import GridSearch, RandomSearch, RegularizedEvolution, TpeLite
from .pareto import pareto_front
from .runner import DEFAULT_BATCH
from .space import Parameter, ParameterSpace, vexriscv_space
from .store import CLAIMED, COMPLETED, PENDING, StudyStore, TrialRecord
from .study import MetricGoal, Study

SERVICE_SCHEMA_VERSION = 1

#: Seconds a worker holds a claimed trial before it is re-issued.
DEFAULT_LEASE_SECONDS = 60.0

#: Study lifecycle states.
ACTIVE = "ACTIVE"
STOPPED = "STOPPED"
DONE = "DONE"

#: Histogram buckets for per-trial evaluation seconds.
TRIAL_SECONDS_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

ALGORITHMS = {
    "random": RandomSearch,
    "regularized_evolution": RegularizedEvolution,
    "tpe": TpeLite,
    # Deterministic whole-space enumeration: suggestion k is grid point
    # k, so the tensorized sweep can stream precomputed results through
    # the trial store in chunks (see repro.dse.exhaustive).
    "exhaustive": GridSearch,
}


class ServiceError(Exception):
    """A request the service refuses; carries the HTTP status."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


def build_space(spec):
    """A ParameterSpace from its wire form: a registered name, or an
    inline ``{"parameters": [{"name", "values"}, ...]}`` document
    (values must be JSON scalars — they round-trip the wire)."""
    if spec == "vexriscv":
        return vexriscv_space()
    if isinstance(spec, dict) and "parameters" in spec:
        return ParameterSpace([
            Parameter(str(p["name"]), tuple(p["values"]))
            for p in spec["parameters"]
        ])
    raise ServiceError(f"unknown space spec {spec!r}")


def space_to_spec(space):
    """The inline wire form of a ParameterSpace."""
    return {"parameters": [{"name": p.name, "values": list(p.values)}
                           for p in space]}


def build_algorithm(name):
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise ServiceError(
            f"unknown algorithm {name!r} "
            f"(expected one of {', '.join(sorted(ALGORITHMS))})") from None


def normalize_config(config):
    """Fill defaults and validate a study config document."""
    config = dict(config)
    for required in ("owner", "study_id", "budget"):
        if required not in config:
            raise ServiceError(f"study config is missing {required!r}")
    config["owner"] = str(config["owner"])
    config["study_id"] = str(config["study_id"])
    config["budget"] = int(config["budget"])
    if config["budget"] < 1:
        raise ServiceError(f"budget must be >= 1, got {config['budget']}")
    config.setdefault("family", "none")
    config.setdefault("space", "vexriscv")
    config.setdefault("goals", ["cycles", "logic_cells"])
    config["goals"] = [
        g if isinstance(g, dict) else {"name": str(g), "goal": "minimize"}
        for g in config["goals"]
    ]
    config.setdefault("algorithm", "regularized_evolution")
    config.setdefault("seed", 0)
    config["batch"] = int(config.get("batch") or DEFAULT_BATCH)
    if config["batch"] < 1:
        raise ServiceError(f"batch must be >= 1, got {config['batch']}")
    config["max_inflight"] = int(config.get("max_inflight")
                                 or config["batch"])
    config.setdefault("state", ACTIVE)
    # eagerly validate the references so creation fails fast
    build_space(config["space"])
    build_algorithm(config["algorithm"])
    return config


def resource_name(owner, study_id):
    return f"owners/{owner}/studies/{study_id}"


class FaultInjector:
    """Planned failures for the adversarial suite.

    ``plan(route, count, kind)`` queues faults on a logical route
    (``"suggest"``, ``"complete"``, ``"work"``, ...): ``"error"``
    answers with an HTTP 5xx, ``"drop"`` severs the connection without
    executing the handler, and ``"drop_after"`` executes the handler
    but severs the connection before the response — the lost-response
    case that forces the client to retry an already-applied request.
    Faults are consumed FIFO, one per matching request.
    """

    def __init__(self):
        self._plans = {}
        self.injected = 0

    def plan(self, route, count=1, kind="error", status=500):
        if kind not in ("error", "drop", "drop_after"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self._plans.setdefault(route, []).extend([(kind, status)] * count)

    def take(self, route):
        plans = self._plans.get(route)
        if plans:
            self.injected += 1
            return plans.pop(0)
        return None

    def pending(self):
        return sum(len(v) for v in self._plans.values())

    def clear(self):
        self._plans.clear()


class ServiceStudy:
    """One study's runtime: the optimizer, the lease book, the queue."""

    def __init__(self, service, config):
        self.service = service
        self.config = config
        self.owner = config["owner"]
        self.study_id = config["study_id"]
        self.resource_name = resource_name(self.owner, self.study_id)
        self.state = config["state"]
        self.study = Study(
            space=build_space(config["space"]),
            goals=[MetricGoal(g["name"], g.get("goal", "minimize"))
                   for g in config["goals"]],
            algorithm=build_algorithm(config["algorithm"]),
            name=self.study_id,
            seed=config["seed"],
        )
        self.records = {}          # trial_id -> TrialRecord
        self.queue = []            # assignable trial ids, FIFO
        self._claims = 0           # lease token nonce
        self._subscribers = []     # asyncio queues for pareto-stream
        self._front_keys = None
        self._started_mono = None  # first claim (for trials/sec)
        self._elapsed = 0.0

    # --- shorthands ---------------------------------------------------------------
    @property
    def budget(self):
        return self.config["budget"]

    @property
    def batch(self):
        return self.config["batch"]

    def _counter(self, name):
        return self.service.metrics.counter(name, study=self.study_id)

    def _persist_trial(self, record):
        self.service.store.write_trial(self.owner, self.study_id, record)

    def _persist_state(self):
        self.config["state"] = self.state
        self.service.store.write_study(self.config)

    def _set_state(self, state):
        if state != self.state:
            self.state = state
            self._persist_state()
            if state in (DONE, STOPPED):
                self._notify(done=True)

    # --- scheduling ---------------------------------------------------------------
    def completed_count(self):
        return sum(1 for r in self.records.values() if r.state == COMPLETED)

    def inflight(self):
        return sum(1 for r in self.records.values() if r.state == CLAIMED)

    def _reclaim_expired(self):
        now = self.service.clock()
        for record in self.records.values():
            if record.state == CLAIMED and record.lease_deadline <= now:
                record.state = PENDING
                record.lease_token = ""
                record.worker = ""
                self._persist_trial(record)
                self.queue.append(record.trial_id)
                self._counter("dse_lease_reclaims").inc()
        self.queue.sort()  # reclaimed work keeps deterministic order

    def _ensure_round(self):
        """Suggest the next fixed-size round iff the previous one is
        fully complete (the determinism barrier)."""
        if self.state != ACTIVE:
            return
        suggested = len(self.study.trials)
        if suggested >= self.budget:
            return
        if any(r.state != COMPLETED for r in self.records.values()):
            return
        count = min(self.batch, self.budget - suggested)
        for trial in self.study.suggest(count):
            record = TrialRecord(trial_id=trial.trial_id,
                                 parameters=dict(trial.parameters))
            self.records[trial.trial_id] = record
            self._persist_trial(record)
            self.queue.append(trial.trial_id)
        self._counter("dse_trials_suggested").add(count)

    def claim(self, worker_id, count=1):
        """Lease up to ``count`` assignable trials to ``worker_id``."""
        if self.state != ACTIVE:
            return []
        if self._started_mono is None:
            self._started_mono = time.monotonic()
        self._reclaim_expired()
        self._ensure_round()
        granted = []
        while (self.queue and len(granted) < count
               and self.inflight() < self.config["max_inflight"]):
            record = self.records[self.queue.pop(0)]
            self._claims += 1
            record.state = CLAIMED
            record.worker = str(worker_id)
            record.lease_token = f"{self.study_id}/{record.trial_id}#{self._claims}"
            record.lease_deadline = (self.service.clock()
                                     + self.service.lease_seconds)
            self._persist_trial(record)
            granted.append(record)
        self._export_gauges()
        return granted

    def complete(self, trial_id, lease_token, metrics=None, infeasible=False,
                 cache_hit=False, seconds=0.0, worker_id=""):
        """Apply one completion; idempotent per lease, stale-safe."""
        result = self._complete_one(trial_id, lease_token, metrics=metrics,
                                    infeasible=infeasible, cache_hit=cache_hit,
                                    seconds=seconds, worker_id=worker_id)
        self._finalize_completions()
        return result

    def complete_batch(self, completions):
        """Apply many completions; the front is published once at the end.

        Each item is ``{"trial_id", "lease_token", "metrics"?,
        "infeasible"?, "cache_hit"?, "seconds"?, "worker_id"?}``.  Items
        are independent: a stale or unknown lease yields a per-item
        ``{"ok": False, ...}`` entry instead of failing the batch.  This
        is the streaming path of the exhaustive sweep — completing a
        whole chunk per front recomputation instead of paying an
        O(completed) front scan per trial.
        """
        results = []
        for item in completions:
            try:
                results.append(self._complete_one(
                    int(item["trial_id"]),
                    str(item.get("lease_token", "")),
                    metrics=item.get("metrics"),
                    infeasible=bool(item.get("infeasible", False)),
                    cache_hit=bool(item.get("cache_hit", False)),
                    seconds=float(item.get("seconds", 0.0)),
                    worker_id=str(item.get("worker_id", "")),
                ))
            except ServiceError as error:
                results.append({"ok": False, "error": str(error),
                                "status": error.status})
        self._finalize_completions()
        return results

    def _complete_one(self, trial_id, lease_token, metrics=None,
                      infeasible=False, cache_hit=False, seconds=0.0,
                      worker_id=""):
        record = self.records.get(trial_id)
        if record is None:
            raise ServiceError(f"no trial {trial_id} in {self.resource_name}",
                               status=404)
        if record.state == COMPLETED:
            if lease_token and lease_token == record.lease_token:
                # the worker's retry of a completion whose response was
                # lost: already applied, simply acknowledge
                self._counter("dse_duplicate_completions").inc()
                return {"ok": True, "duplicate": True}
            self._counter("dse_stale_completions").inc()
            raise ServiceError(
                f"trial {trial_id} already completed under another lease",
                status=409)
        if record.state != CLAIMED or lease_token != record.lease_token:
            self._counter("dse_stale_completions").inc()
            raise ServiceError(
                f"lease for trial {trial_id} is stale (re-issued after "
                f"expiry); discard the result", status=409)
        record.state = COMPLETED
        record.metrics = dict(metrics or {})
        record.infeasible = bool(infeasible)
        record.cache_hit = bool(cache_hit)
        record.seconds = float(seconds)
        record.worker = str(worker_id) or record.worker
        self._persist_trial(record)
        self._apply_to_study(record)
        self._counter("dse_trials_completed").inc()
        if record.infeasible:
            self._counter("dse_trials_infeasible").inc()
        hit_name = ("dse_worker_cache_hits" if record.cache_hit
                    else "dse_worker_cache_misses")
        self._counter(hit_name).inc()
        self.service.metrics.histogram(
            "dse_trial_seconds", buckets=TRIAL_SECONDS_BUCKETS,
            study=self.study_id).observe(record.seconds)
        return {"ok": True, "duplicate": False}

    def _finalize_completions(self):
        """Front publication + done-check, once per completion batch."""
        if self._started_mono is not None:
            self._elapsed = time.monotonic() - self._started_mono
        self._publish_front()
        if (len(self.study.trials) >= self.budget
                and self.completed_count() >= self.budget):
            self._set_state(DONE)
        self._export_gauges()

    def _apply_to_study(self, record):
        trial = self.study.trials[record.trial_id - 1]
        if record.infeasible:
            trial.complete(infeasible=True)
        else:
            trial.complete(record.metrics)

    def _export_gauges(self):
        metrics = self.service.metrics
        metrics.gauge("dse_queue_depth", study=self.study_id) \
            .set(len(self.queue))
        metrics.gauge("dse_inflight", study=self.study_id) \
            .set(self.inflight())

    # --- resume (replay) ----------------------------------------------------------
    def replay(self):
        """Rebuild runtime state from the store after a restart.

        Suggestions are re-derived round by round — the algorithm's RNG
        state is regenerated exactly, so resumed suggestions match the
        uninterrupted run's.  Persisted completions are re-applied,
        live leases re-adopted, expired/torn ones re-queued.
        """
        records, unreadable = self.service.store.load_trials(
            self.owner, self.study_id)
        if unreadable:
            self._counter("dse_store_unreadable_trials").add(unreadable)
        now = self.service.clock()
        while len(self.study.trials) < self.budget:
            start = len(self.study.trials)
            count = min(self.batch, self.budget - start)
            round_ids = range(start + 1, start + count + 1)
            if not any(tid in records for tid in round_ids):
                break  # this round was never durably suggested
            for trial in self.study.suggest(count):
                record = records.get(trial.trial_id)
                if record is None:
                    # a torn suggestion: the replayed parameters are the
                    # ones the crashed server computed — heal the file
                    record = TrialRecord(trial_id=trial.trial_id,
                                         parameters=dict(trial.parameters))
                    self._persist_trial(record)
                elif record.parameters != trial.parameters:
                    # never expected for an unchanged algorithm; the
                    # store is the durable truth, so prefer it
                    self._counter("dse_replay_param_mismatch").inc()
                    trial.parameters = dict(record.parameters)
                self.records[trial.trial_id] = record
                if record.state == COMPLETED:
                    self._apply_to_study(record)
                elif record.state == CLAIMED and record.lease_deadline > now:
                    pass  # re-adopt the in-flight lease as-is
                else:
                    if record.state == CLAIMED:
                        self._counter("dse_lease_reclaims").inc()
                    record.state = PENDING
                    record.lease_token = ""
                    record.worker = ""
                    self._persist_trial(record)
                    self.queue.append(record.trial_id)
            # No barrier check here: a later round on disk proves the
            # earlier round *did* complete before the crash (the barrier
            # enforced it), so a non-COMPLETED record in a replayed
            # round can only be a torn file — re-queue just that record
            # and keep replaying; every other completed trial survives.
        self.queue.sort()
        if (len(self.study.trials) >= self.budget
                and self.records
                and self.completed_count() >= self.budget
                and self.state == ACTIVE):
            self.state = DONE
            self._persist_state()
        self._front_keys = self._current_front_keys()
        self._export_gauges()
        return self

    # --- results ------------------------------------------------------------------
    def feasible_records(self):
        return [r for r in sorted(self.records.values(),
                                  key=lambda r: r.trial_id)
                if r.state == COMPLETED and not r.infeasible]

    def completed_records(self):
        return [r for r in sorted(self.records.values(),
                                  key=lambda r: r.trial_id)
                if r.state == COMPLETED]

    def _metric_tuple(self, record):
        return tuple(MetricGoal(g["name"], g.get("goal", "minimize"))
                     .canonical(record.metrics[g["name"]])
                     for g in self.config["goals"])

    def front(self):
        """The current Pareto front over feasible completed trials."""
        records = pareto_front(self.feasible_records(),
                               key=self._metric_tuple)
        return [{"trial_id": r.trial_id, "parameters": dict(r.parameters),
                 "metrics": dict(r.metrics)} for r in records]

    def _current_front_keys(self):
        return {(r["trial_id"]) for r in self.front()}

    def trials_per_second(self):
        completed = self.completed_count()
        if not completed or self._elapsed <= 0.0:
            return 0.0
        return completed / self._elapsed

    def status(self):
        return {
            "resource_name": self.resource_name,
            "owner": self.owner,
            "study_id": self.study_id,
            "family": self.config["family"],
            "state": self.state,
            "budget": self.budget,
            "batch": self.batch,
            "max_inflight": self.config["max_inflight"],
            "suggested": len(self.study.trials),
            "completed": self.completed_count(),
            "infeasible": sum(1 for r in self.records.values()
                              if r.state == COMPLETED and r.infeasible),
            "claimed": self.inflight(),
            "queue_depth": len(self.queue),
            "front_size": len(self.front()),
            "trials_per_sec": round(self.trials_per_second(), 3),
        }

    # --- pareto streaming ---------------------------------------------------------
    def subscribe(self):
        queue = asyncio.Queue()
        queue.put_nowait(self._stream_item())
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue):
        if queue in self._subscribers:
            self._subscribers.remove(queue)

    def _stream_item(self, done=None):
        return {"study": self.resource_name,
                "completed": self.completed_count(),
                "front": self.front(),
                "done": self.state in (DONE, STOPPED) if done is None
                else done}

    def _notify(self, done=False):
        item = self._stream_item(done=done or self.state in (DONE, STOPPED))
        for queue in self._subscribers:
            queue.put_nowait(item)

    def _publish_front(self):
        keys = self._current_front_keys()
        if keys != self._front_keys:
            self._front_keys = keys
            self._notify()

    # --- wire forms ---------------------------------------------------------------
    def trial_wire(self, record):
        return {
            "study": self.resource_name,
            "owner": self.owner,
            "study_id": self.study_id,
            "family": self.config["family"],
            "trial_id": record.trial_id,
            "parameters": dict(record.parameters),
            "lease_token": record.lease_token,
            "lease_deadline": record.lease_deadline,
        }


class DseService:
    """Many studies behind one store, one metrics registry, one pool."""

    def __init__(self, store_dir=None, lease_seconds=DEFAULT_LEASE_SECONDS,
                 clock=time.time, metrics=None):
        self.store = StudyStore(store_dir)
        self.lease_seconds = float(lease_seconds)
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = FaultInjector()
        self.studies = {}
        self._rr = 0
        for config in self.store.list_studies():
            study = ServiceStudy(self, normalize_config(config))
            study.replay()
            self.studies[study.resource_name] = study
        self._export_active()

    def _export_active(self):
        self.metrics.gauge("dse_studies_active").set(
            sum(1 for s in self.studies.values() if s.state == ACTIVE))

    # --- study management ---------------------------------------------------------
    def create_study(self, config):
        config = normalize_config(config)
        name = resource_name(config["owner"], config["study_id"])
        if name in self.studies:
            raise ServiceError(f"study {name} already exists", status=409)
        study = ServiceStudy(self, config)
        self.store.write_study(config)
        self.studies[name] = study
        self._export_active()
        return study

    def get_study(self, owner, study_id):
        name = resource_name(owner, study_id)
        try:
            return self.studies[name]
        except KeyError:
            raise ServiceError(f"no study {name}", status=404) from None

    def stop_study(self, owner, study_id):
        study = self.get_study(owner, study_id)
        study._set_state(STOPPED)
        self._export_active()
        return study

    def list_statuses(self):
        return [self.studies[name].status()
                for name in sorted(self.studies)]

    def all_done(self):
        return bool(self.studies) and all(
            s.state in (DONE, STOPPED) for s in self.studies.values())

    # --- the shared worker pool entry ----------------------------------------------
    def work(self, worker_id, count=1):
        """Round-robin claims across active studies (fair sharing)."""
        active = [self.studies[name] for name in sorted(self.studies)
                  if self.studies[name].state == ACTIVE]
        granted = []
        if active:
            misses = 0
            while len(granted) < count and misses < len(active):
                study = active[self._rr % len(active)]
                self._rr += 1
                got = study.claim(worker_id, 1)
                if got:
                    granted.append(study.trial_wire(got[0]))
                    misses = 0
                else:
                    misses += 1
        self._export_active()
        return granted


# --------------------------------------------------------------------------------
# The HTTP layer: a minimal, dependency-free HTTP/1.1 server on asyncio
# streams.  Handlers are synchronous, so every state mutation is atomic
# with respect to the event loop.
# --------------------------------------------------------------------------------

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 500: "Internal Server Error",
            503: "Service Unavailable"}


async def _read_request(reader):
    """One HTTP/1.1 request -> (method, path, headers, body) or None."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = line.decode("latin-1").split(" ", 2)
    except ValueError:
        return None
    headers = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _json_bytes(status, payload):
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n").encode("latin-1")
    return head + body


class DseHttpServer:
    """Serves a :class:`DseService` over HTTP/1.1."""

    def __init__(self, service, host="127.0.0.1", port=0):
        self.service = service
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def wait_closed(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    # --- connection loop ----------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_open = await self._handle_request(
                    method, target, body, writer)
                if not keep_open:
                    break
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown: close the socket and finish quietly
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, method, target, body, writer):
        path, _, _query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        route, handler = self._route(method, parts)
        self.service.metrics.counter("dse_http_requests", route=route).inc()
        fault = self.service.faults.take(route)
        drop_response = False
        if fault is not None:
            kind, status = fault
            if kind == "drop":
                return False  # sever before the handler runs
            if kind == "drop_after":
                drop_response = True  # run the handler, lose the response
            else:
                writer.write(_json_bytes(status,
                                         {"error": "injected fault"}))
                await writer.drain()
                return True
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            writer.write(_json_bytes(400, {"error": "malformed JSON body"}))
            await writer.drain()
            return True
        if route == "pareto-stream":
            await self._stream_pareto(parts[1], parts[2], writer)
            return False  # streams close the connection when done
        try:
            status, result = handler(parts, payload)
        except ServiceError as error:
            status, result = error.status, {"error": str(error)}
        except Exception as error:  # never kill the connection loop
            status, result = 500, {"error": f"internal error: {error!r}"}
        if drop_response:
            return False  # the work is applied; the acknowledgment is lost
        writer.write(_json_bytes(status, result))
        await writer.drain()
        return True

    def _route(self, method, parts):
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            return "healthz", lambda p, b: (200, {"ok": True})
        if method == "GET" and parts == ["metrics"]:
            return "metrics", lambda p, b: (200, service.metrics.snapshot())
        if method == "GET" and parts == ["studies"]:
            return "list", lambda p, b: (200, {
                "studies": service.list_statuses(),
                "done": service.all_done()})
        if method == "POST" and parts == ["studies"]:
            return "create", self._create
        if method == "POST" and parts == ["work"]:
            return "work", self._work
        if len(parts) >= 3 and parts[0] == "studies":
            owner, study_id = parts[1], parts[2]
            tail = parts[3:]
            if method == "GET" and not tail:
                return "status", lambda p, b: (
                    200, service.get_study(owner, study_id).status())
            if method == "GET" and tail == ["pareto"]:
                return "pareto", lambda p, b: (200, {
                    "front": service.get_study(owner, study_id).front()})
            if method == "GET" and tail == ["pareto-stream"]:
                return "pareto-stream", None
            if method == "GET" and tail == ["trials"]:
                return "trials", self._trials
            if method == "POST" and tail == ["suggest"]:
                return "suggest", self._suggest
            if method == "POST" and tail == ["stop"]:
                return "stop", lambda p, b: (
                    200, service.stop_study(owner, study_id).status())
            if method == "POST" and tail == ["trials", "complete-batch"]:
                return "complete-batch", self._complete_batch
            if (method == "POST" and len(tail) == 3 and tail[0] == "trials"
                    and tail[2] == "complete"):
                return "complete", self._complete
        return "unknown", lambda p, b: (
            404, {"error": f"no route {method} /{'/'.join(parts)}"})

    # --- handlers -----------------------------------------------------------------
    def _create(self, parts, payload):
        study = self.service.create_study(payload)
        return 200, study.status()

    def _work(self, parts, payload):
        worker_id = str(payload.get("worker_id", "worker"))
        count = int(payload.get("count", 1))
        trials = self.service.work(worker_id, count)
        return 200, {"trials": trials, "done": self.service.all_done()}

    def _suggest(self, parts, payload):
        study = self.service.get_study(parts[1], parts[2])
        worker_id = str(payload.get("worker_id", "worker"))
        count = int(payload.get("count", 1))
        granted = study.claim(worker_id, count)
        return 200, {"trials": [study.trial_wire(r) for r in granted],
                     "done": study.state in (DONE, STOPPED),
                     "state": study.state}

    def _complete(self, parts, payload):
        study = self.service.get_study(parts[1], parts[2])
        trial_id = int(parts[4])
        result = study.complete(
            trial_id,
            lease_token=str(payload.get("lease_token", "")),
            metrics=payload.get("metrics"),
            infeasible=bool(payload.get("infeasible", False)),
            cache_hit=bool(payload.get("cache_hit", False)),
            seconds=float(payload.get("seconds", 0.0)),
            worker_id=str(payload.get("worker_id", "")),
        )
        result["state"] = study.state
        return 200, result

    def _complete_batch(self, parts, payload):
        study = self.service.get_study(parts[1], parts[2])
        results = study.complete_batch(payload.get("completions", []))
        return 200, {"results": results, "state": study.state}

    def _trials(self, parts, payload):
        study = self.service.get_study(parts[1], parts[2])
        return 200, {
            "study": study.resource_name,
            "family": study.config["family"],
            "trials": [
                {"trial_id": r.trial_id, "parameters": dict(r.parameters),
                 "metrics": dict(r.metrics), "infeasible": r.infeasible,
                 "cache_hit": r.cache_hit, "seconds": r.seconds}
                for r in study.completed_records()
            ],
        }

    async def _stream_pareto(self, owner, study_id, writer):
        """Chunked NDJSON: the current front immediately, then one line
        per front change, ending when the study finishes."""
        try:
            study = self.service.get_study(owner, study_id)
        except ServiceError as error:
            writer.write(_json_bytes(error.status, {"error": str(error)}))
            await writer.drain()
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        queue = study.subscribe()
        try:
            while True:
                item = await queue.get()
                chunk = (json.dumps(item, sort_keys=True) + "\n").encode()
                writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
                await writer.drain()
                if item.get("done"):
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            study.unsubscribe(queue)


def serve(service, host="127.0.0.1", port=8733):
    """Blocking entry point (``repro dse serve``)."""
    async def _main():
        server = await DseHttpServer(service, host, port).start()
        await server._server.serve_forever()
    asyncio.run(_main())


class ServiceThread:
    """A served :class:`DseService` on a background thread (tests, the
    benchmark harness, and ``repro dse --service-url``-less local runs).

    >>> handle = ServiceThread(DseService(store_dir=...))  # doctest: +SKIP
    >>> client = ServiceClient(handle.url)
    >>> ...
    >>> handle.stop()
    """

    def __init__(self, service, host="127.0.0.1", port=0):
        self.service = service
        self._http = DseHttpServer(service, host, port)
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("DSE service thread failed to start")

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self._http.start())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._http.wait_closed())
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            loop.close()

    @property
    def url(self):
        return self._http.url

    def stop(self):
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
