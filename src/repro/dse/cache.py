"""Content-addressed persistent cache for DSE evaluations.

A cache key is the SHA-256 of a canonical JSON document over
``(parameters, family, model, board)`` plus the schema version, so
equivalent configurations hash identically regardless of dict insertion
order and distinct configurations do not collide.  A value is one
evaluation outcome: a :class:`~repro.dse.runner.DsePoint`, or the
explicit "does not fit" verdict (``None``) — infeasibility is cached
too, so warm reruns skip fit rejections as well.

Entries live one-per-file under ``cache_dir/<k[:2]>/<key>.json``
(sharded on the first key byte so directories stay small), written
atomically via temp-file + rename so concurrent workers and interrupted
runs cannot corrupt an entry in place.  Unreadable, truncated, or
foreign-schema files are treated as misses and rebuilt on the next
store — never crashed on.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

CACHE_SCHEMA_VERSION = 1

# Sentinel distinguishing "not cached" from "cached as infeasible".
MISS = object()


def canonical_payload(parameters, family, model=None, board=None):
    """The identity of one evaluation, as plain JSON-able data."""
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "family": family,
        "parameters": {str(name): parameters[name] for name in parameters},
        "model": model,
        "board": board,
    }


def cache_key(parameters, family, model=None, board=None):
    """Content address: SHA-256 over the canonical JSON document.

    ``sort_keys`` canonicalizes dict ordering, so two dicts with the
    same items in different insertion order produce the same key.
    """
    payload = canonical_payload(parameters, family, model=model, board=board)
    document = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          default=repr)
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


class EvaluationCache:
    """Two-level (memory, then optional disk) map from key to outcome.

    With no ``cache_dir`` this is a per-process memo; with one, entries
    persist across processes and runs.  ``get`` returns :data:`MISS`
    when the key is absent (``None`` is a real cached value: infeasible).
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self._memory = {}
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)

    def __len__(self):
        return len(self._memory)

    def get(self, key):
        if key in self._memory:
            return self._memory[key]
        if self.cache_dir is None:
            return MISS
        value = self._load(key)
        if value is not MISS:
            self._memory[key] = value
        return value

    def put(self, key, value):
        """Store an outcome (a DsePoint, or None for "does not fit")."""
        self._memory[key] = value
        if self.cache_dir is not None:
            self._store(key, value)
        return value

    # --- disk layer -------------------------------------------------------------
    def _path(self, key):
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def _load(self, key):
        from .runner import DsePoint

        try:
            with open(self._path(key)) as handle:
                record = json.load(handle)
            if record.get("schema") != CACHE_SCHEMA_VERSION:
                return MISS
            if not record["fit"]:
                return None
            return DsePoint.from_record(record["point"])
        except (OSError, ValueError, KeyError, TypeError):
            # missing, truncated, garbage, or foreign file: a plain miss
            return MISS

    def _store(self, key, value):
        record = {"schema": CACHE_SCHEMA_VERSION, "fit": value is not None}
        if value is not None:
            record["point"] = value.to_record()
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        # atomic publish: concurrent readers see the old file or the new
        # one, never a half-written entry
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
