"""Worker fleets and the wire client for the DSE study service.

A worker is a plain loop: pull a suggestion batch from the service
(``POST /work`` — round-robined across every active study), evaluate
each trial with the tiered-simulator-backed :class:`Fig7Evaluator`
(served from the content-addressed evaluation cache when warm), and
complete the trial over the wire.  Workers are deliberately stateless:
any number can run in threads, processes, or on other hosts, a killed
worker loses nothing (its leases expire and the trials are re-issued),
and a worker that outlives a server restart simply retries until the
resumed server re-adopts its leases.

:class:`ServiceClient` is the transport: stdlib ``http.client`` with
exponential retry/backoff on connection errors, timeouts, and HTTP
5xx.  Claim loss is handled at the protocol layer — a completion whose
response was lost is retried idempotently (same lease token), and a
completion whose lease was re-issued after expiry comes back as a
:class:`StaleLeaseError` that the worker logs and drops, so retries can
never double-count a trial.

``run_fig7_service`` is the paper-scale entry: it submits the three
Fig. 7 studies, drives a local worker fleet, and folds the completed
trials back into a :class:`~repro.dse.runner.DseResult` that is
golden-equal to the in-process ``run_fig7`` engine.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse

from .cache import EvaluationCache
from .runner import CFU_FAMILIES, DEFAULT_BATCH, DsePoint, DseResult, Fig7Evaluator

#: Study owner used by the Fig. 7 reproduction studies.
FIG7_OWNER = "fig7"


class ServiceUnavailable(ConnectionError):
    """The service stayed unreachable through every retry."""


class ClientError(RuntimeError):
    """A 4xx the client must not retry."""

    def __init__(self, status, payload):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class StaleLeaseError(ClientError):
    """The trial's lease was re-issued (or completed) elsewhere."""


class ServiceClient:
    """JSON-over-HTTP client with retry/backoff on transient failures.

    ``sleep`` is injectable so the fault-injection suite converges
    without real waiting; backoff is exponential from ``backoff`` up to
    ``backoff_cap`` seconds.
    """

    def __init__(self, base_url, worker_id="worker-0", timeout=30.0,
                 max_retries=8, backoff=0.05, backoff_cap=2.0,
                 sleep=time.sleep):
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.worker_id = worker_id
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.sleep = sleep
        self.retries = 0  # transient failures survived (observability)
        self._conn = None

    # --- transport ----------------------------------------------------------------
    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _drop_connection(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def request(self, method, path, payload=None):
        """One API call; retries transient failures, raises
        :class:`ClientError` subclasses on 4xx and
        :class:`ServiceUnavailable` when retries are exhausted."""
        body = json.dumps(payload).encode() if payload is not None else b""
        attempt = 0
        while True:
            try:
                conn = self._connection()
                conn.request(method, path, body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                data = response.read()
                status = response.status
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                attempt += 1
                self.retries += 1
                if attempt > self.max_retries:
                    raise ServiceUnavailable(
                        f"{method} {path} failed after "
                        f"{self.max_retries} retries: {error!r}") from error
                self.sleep(min(self.backoff_cap,
                               self.backoff * (2 ** (attempt - 1))))
                continue
            try:
                result = json.loads(data.decode("utf-8")) if data else {}
            except ValueError:
                result = {"error": data.decode("utf-8", "replace")}
            if status >= 500:
                attempt += 1
                self.retries += 1
                if attempt > self.max_retries:
                    raise ServiceUnavailable(
                        f"{method} {path}: HTTP {status} persisted through "
                        f"{self.max_retries} retries")
                self.sleep(min(self.backoff_cap,
                               self.backoff * (2 ** (attempt - 1))))
                continue
            if status == 409:
                raise StaleLeaseError(status, result)
            if status >= 400:
                raise ClientError(status, result)
            return result

    def close(self):
        self._drop_connection()

    # --- API surface --------------------------------------------------------------
    def healthz(self):
        return self.request("GET", "/healthz")

    def metrics(self):
        return self.request("GET", "/metrics")

    def create_study(self, config):
        return self.request("POST", "/studies", config)

    def list_studies(self):
        return self.request("GET", "/studies")

    def study_status(self, owner, study_id):
        return self.request("GET", f"/studies/{owner}/{study_id}")

    def stop_study(self, owner, study_id):
        return self.request("POST", f"/studies/{owner}/{study_id}/stop", {})

    def suggest(self, owner, study_id, count=1):
        return self.request(
            "POST", f"/studies/{owner}/{study_id}/suggest",
            {"worker_id": self.worker_id, "count": count})

    def work(self, count=1):
        return self.request(
            "POST", "/work", {"worker_id": self.worker_id, "count": count})

    def complete(self, trial, metrics=None, infeasible=False,
                 cache_hit=False, seconds=0.0):
        """Complete a claimed trial (the wire dict from suggest/work)."""
        path = (f"/studies/{trial['owner']}/{trial['study_id']}"
                f"/trials/{trial['trial_id']}/complete")
        return self.request("POST", path, {
            "worker_id": self.worker_id,
            "lease_token": trial["lease_token"],
            "metrics": metrics,
            "infeasible": infeasible,
            "cache_hit": cache_hit,
            "seconds": seconds,
        })

    def complete_batch(self, owner, study_id, completions):
        """Apply many completions in one request (one persist/front pass).

        Each item is ``{"trial_id", "lease_token", "metrics"?,
        "infeasible"?, "cache_hit"?, "seconds"?}``; per-item results come
        back positionally so one stale lease doesn't fail the batch.
        """
        items = [{**item, "worker_id": item.get("worker_id",
                                                self.worker_id)}
                 for item in completions]
        return self.request(
            "POST", f"/studies/{owner}/{study_id}/trials/complete-batch",
            {"completions": items})

    def trials(self, owner, study_id):
        return self.request("GET", f"/studies/{owner}/{study_id}/trials")

    def pareto(self, owner, study_id):
        return self.request("GET", f"/studies/{owner}/{study_id}/pareto")

    def stream_pareto(self, owner, study_id):
        """Yield Pareto-front updates as the study progresses (a
        dedicated streaming connection; ends when the study finishes)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/studies/{owner}/{study_id}/pareto-stream")
            response = conn.getresponse()
            if response.status != 200:
                raise ClientError(response.status,
                                  json.loads(response.read() or b"{}"))
            while True:
                line = response.readline()
                if not line:
                    break
                yield json.loads(line)
        finally:
            conn.close()


class WorkerStats:
    """What one worker did (returned by :func:`run_worker`)."""

    def __init__(self):
        self.claimed = 0
        self.completed = 0
        self.cache_hits = 0
        self.infeasible = 0
        self.stale_leases = 0

    def as_dict(self):
        return {"claimed": self.claimed, "completed": self.completed,
                "cache_hits": self.cache_hits, "infeasible": self.infeasible,
                "stale_leases": self.stale_leases}


def run_worker(base_url, worker_id="worker-0", evaluator=None,
               cache_dir=None, poll_interval=0.05, eval_latency=0.0,
               batch=1, max_trials=None, stop=None, sleep=time.sleep,
               client=None, sim_backend="auto", compile_cache_dir=None):
    """Pull-evaluate-complete until every study on the service is done.

    ``evaluator`` defaults to a fresh :class:`Fig7Evaluator` backed by
    ``cache_dir`` (share one evaluator across threads to share the warm
    in-memory cache).  ``eval_latency`` adds a fixed sleep per trial —
    the service benchmark uses it to measure scheduling scalability
    independently of host core count.  ``stop`` (a ``threading.Event``)
    and ``max_trials`` bound the loop for tests.
    ``compile_cache_dir`` points the process-wide code cache at a
    directory shared by the whole fleet, so simulation-backed
    evaluations bind tier-2/RTL code compiled by any other worker.
    """
    if compile_cache_dir is not None:
        from ..core.codecache import configure

        configure(compile_cache_dir)
    if evaluator is None:
        evaluator = Fig7Evaluator(cache=EvaluationCache(cache_dir),
                                  sim_backend=sim_backend,
                                  compile_cache=compile_cache_dir)
    if client is None:
        client = ServiceClient(base_url, worker_id=worker_id, sleep=sleep)
    stats = WorkerStats()
    try:
        while not (stop is not None and stop.is_set()):
            if max_trials is not None and stats.claimed >= max_trials:
                break
            response = client.work(count=batch)
            trials = response.get("trials", [])
            if not trials:
                if response.get("done"):
                    break
                sleep(poll_interval)
                continue
            for trial in trials:
                stats.claimed += 1
                outcome = evaluator.evaluate_batch(
                    [(trial["parameters"], trial["family"])])[0]
                if eval_latency:
                    sleep(eval_latency)
                point = outcome.point
                metrics = None if point is None else {
                    "cycles": point.cycles, "logic_cells": point.logic_cells}
                try:
                    client.complete(trial, metrics=metrics,
                                    infeasible=point is None,
                                    cache_hit=outcome.cache_hit,
                                    seconds=outcome.seconds)
                except StaleLeaseError:
                    # the lease expired mid-evaluation and the trial was
                    # re-issued; drop the result — exactly-once
                    # accounting belongs to the new lease holder
                    stats.stale_leases += 1
                    continue
                stats.completed += 1
                if outcome.cache_hit:
                    stats.cache_hits += 1
                if point is None:
                    stats.infeasible += 1
    finally:
        client.close()
    return stats


class WorkerFleet:
    """A local fleet of worker threads against one service URL.

    Threads share one evaluator (one model load, one in-memory cache
    layer); for multi-core fleets use ``repro dse work`` processes.
    """

    def __init__(self, base_url, workers=1, cache_dir=None, evaluator=None,
                 poll_interval=0.05, eval_latency=0.0, sim_backend="auto",
                 compile_cache_dir=None):
        self.base_url = base_url
        self.evaluator = evaluator or Fig7Evaluator(
            cache=EvaluationCache(cache_dir), sim_backend=sim_backend,
            compile_cache=compile_cache_dir)
        self.stop_event = threading.Event()
        self.stats = [WorkerStats() for _ in range(workers)]
        self._threads = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._run_one, args=(index, poll_interval,
                                            eval_latency),
                name=f"dse-worker-{index}", daemon=True)
            self._threads.append(thread)

    def _run_one(self, index, poll_interval, eval_latency):
        self.stats[index] = run_worker(
            self.base_url, worker_id=f"worker-{index}",
            evaluator=self.evaluator, poll_interval=poll_interval,
            eval_latency=eval_latency, stop=self.stop_event)

    def start(self):
        for thread in self._threads:
            thread.start()
        return self

    def join(self, timeout=None):
        for thread in self._threads:
            thread.join(timeout)
        return self

    def stop(self):
        self.stop_event.set()
        self.join(timeout=10.0)

    def totals(self):
        totals = WorkerStats()
        for stats in self.stats:
            totals.claimed += stats.claimed
            totals.completed += stats.completed
            totals.cache_hits += stats.cache_hits
            totals.infeasible += stats.infeasible
            totals.stale_leases += stats.stale_leases
        return totals


# --------------------------------------------------------------------------------
# Fig. 7 over the wire
# --------------------------------------------------------------------------------

def fig7_study_configs(trials_per_family, seed=0, batch=None,
                       owner=FIG7_OWNER, prefix=""):
    """The three Fig. 7 study configs (one per CFU family)."""
    batch = DEFAULT_BATCH if batch is None else batch
    return [
        {
            "owner": owner,
            "study_id": f"{prefix}fig7-{family}",
            "family": family,
            "space": "vexriscv",
            "goals": ["cycles", "logic_cells"],
            "algorithm": "regularized_evolution",
            "seed": seed,
            "budget": trials_per_family,
            "batch": batch,
        }
        for family in CFU_FAMILIES
    ]


def create_fig7_studies(client, trials_per_family, seed=0, batch=None,
                        owner=FIG7_OWNER, prefix=""):
    """Create (or re-adopt, on resume) the three Fig. 7 studies."""
    names = []
    for config in fig7_study_configs(trials_per_family, seed=seed,
                                     batch=batch, owner=owner, prefix=prefix):
        try:
            client.create_study(config)
        except StaleLeaseError:
            pass  # 409: the study already exists — a resumed run
        names.append((config["owner"], config["study_id"]))
    return names


def fetch_result(client, names):
    """Fold completed service trials into a :class:`DseResult`.

    Points are added in (family, trial_id) order — the same order the
    in-process engine sees them — and deduplicated by value, so the
    result compares golden-equal to ``run_fig7``.
    """
    result = DseResult()
    for owner, study_id in names:
        payload = client.trials(owner, study_id)
        family = payload["family"]
        for trial in sorted(payload["trials"],
                            key=lambda t: t["trial_id"]):
            if trial["infeasible"]:
                continue
            metrics = trial["metrics"]
            result.add(DsePoint(
                family=family,
                parameters=dict(trial["parameters"]),
                cycles=float(metrics["cycles"]),
                logic_cells=int(metrics["logic_cells"]),
            ))
    return result


def wait_for_studies(client, names, poll_interval=0.05, timeout=600.0,
                     sleep=time.sleep, clock=time.monotonic):
    """Block until every named study is DONE (or STOPPED)."""
    deadline = clock() + timeout
    while True:
        statuses = [client.study_status(owner, study_id)
                    for owner, study_id in names]
        if all(s["state"] in ("DONE", "STOPPED") for s in statuses):
            return statuses
        if clock() > deadline:
            raise TimeoutError(
                f"studies not done within {timeout}s: "
                f"{[(s['study_id'], s['state'], s['completed']) for s in statuses]}")
        sleep(poll_interval)


def run_fig7_service(service_url=None, trials_per_family=60, seed=0,
                     workers=1, batch=None, cache_dir=None, store_dir=None,
                     owner=FIG7_OWNER, prefix="", lease_seconds=None,
                     sim_backend="auto", timeout=600.0,
                     compile_cache_dir=None):
    """Reproduce Fig. 7 through the study service.

    With ``service_url`` the studies are submitted to a running server
    (``repro dse serve``) and a local worker fleet joins its pool;
    without one, an ephemeral in-process server is started (persisted
    under ``store_dir`` when given) so the call is self-contained.
    Returns ``(DseResult, info_dict)`` where the result is golden-equal
    to the in-process ``run_fig7`` for the same seed/budget/batch.
    """
    from .service import DEFAULT_LEASE_SECONDS, DseService, ServiceThread

    handle = None
    if service_url is None:
        service = DseService(
            store_dir=store_dir,
            lease_seconds=lease_seconds or DEFAULT_LEASE_SECONDS)
        handle = ServiceThread(service)
        service_url = handle.url
    client = ServiceClient(service_url, worker_id="fig7-orchestrator")
    try:
        names = create_fig7_studies(client, trials_per_family, seed=seed,
                                    batch=batch, owner=owner, prefix=prefix)
        fleet = WorkerFleet(service_url, workers=workers,
                            cache_dir=cache_dir, sim_backend=sim_backend,
                            compile_cache_dir=compile_cache_dir)
        started = time.monotonic()
        fleet.start()
        statuses = wait_for_studies(client, names, timeout=timeout)
        fleet.join(timeout=30.0)
        elapsed = time.monotonic() - started
        result = fetch_result(client, names)
        totals = fleet.totals()
        completed = sum(s["completed"] for s in statuses)
        info = {
            "elapsed_seconds": elapsed,
            "trials_completed": completed,
            "trials_per_sec": completed / elapsed if elapsed > 0 else 0.0,
            "worker_stats": [s.as_dict() for s in fleet.stats],
            "cache_hits": totals.cache_hits,
            "evaluations": totals.completed - totals.cache_hits,
            "client_retries": client.retries,
            "statuses": statuses,
        }
        return result, info
    finally:
        client.close()
        if handle is not None:
            handle.stop()
