"""FPGA board models with published resource inventories.

These are the resource envelopes the paper's designs must fit.  Numbers
come from the board/FPGA datasheets quoted in the paper (Section II-C):
Fomu's iCE40UP5k has 5280 logic cells, 128 kB single-port RAM, 30
512-byte block RAMs, and 8 DSP tiles; the Arty A7-35T's XC7A35T has
~33k logic cells, 90 DSP slices, 50 36-kbit block RAMs and 256 MB DDR3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.memories import DDR3, SPI_FLASH, MemoryTech


@dataclass(frozen=True)
class Board:
    """One supported FPGA board."""

    name: str
    fpga: str
    family: str
    logic_cells: int
    bram_bits: int
    dsp_blocks: int
    clock_hz: int
    sram_bytes: int            # on-chip RAM usable as main memory (SPRAM etc.)
    flash_bytes: int
    flash_tech: MemoryTech = SPI_FLASH
    flash_qspi_capable: bool = True
    external_ram_bytes: int = 0
    external_ram_tech: MemoryTech = None
    toolchains: tuple = ("yosys+nextpnr",)

    @property
    def has_external_ram(self):
        return self.external_ram_bytes > 0


ARTY_A7_35T = Board(
    name="arty_a7_35t",
    fpga="XC7A35T",
    family="xilinx7",
    logic_cells=33_280,
    bram_bits=50 * 36 * 1024,
    dsp_blocks=90,
    clock_hz=75_000_000,
    sram_bytes=0,
    flash_bytes=16 * 1024 * 1024,
    external_ram_bytes=256 * 1024 * 1024,
    external_ram_tech=DDR3,
    toolchains=("f4pga", "vivado"),
)

FOMU = Board(
    name="fomu",
    fpga="iCE40UP5k",
    family="ice40",
    logic_cells=5_280,
    bram_bits=30 * 512 * 8,          # 30 x 512-byte EBR blocks
    dsp_blocks=8,                     # 16b x 16b MAC tiles
    clock_hz=12_000_000,
    sram_bytes=128 * 1024,            # 4 x 32 kB SPRAM
    flash_bytes=2 * 1024 * 1024,
    toolchains=("yosys+nextpnr", "icestorm"),
)

ICEBREAKER = Board(
    name="icebreaker",
    fpga="iCE40UP5k",
    family="ice40",
    logic_cells=5_280,
    bram_bits=30 * 512 * 8,
    dsp_blocks=8,
    clock_hz=12_000_000,
    sram_bytes=128 * 1024,
    flash_bytes=16 * 1024 * 1024,
)

ORANGECRAB = Board(
    name="orangecrab",
    fpga="ECP5-25F",
    family="ecp5",
    logic_cells=24_000,
    bram_bits=56 * 18 * 1024,
    dsp_blocks=28,
    clock_hz=48_000_000,
    sram_bytes=0,
    flash_bytes=16 * 1024 * 1024,
    external_ram_bytes=128 * 1024 * 1024,
    external_ram_tech=DDR3,
)

BOARDS = {
    board.name: board
    for board in (ARTY_A7_35T, FOMU, ICEBREAKER, ORANGECRAB)
}


def get_board(name):
    try:
        return BOARDS[name]
    except KeyError:
        raise KeyError(f"unknown board {name!r}; available: {sorted(BOARDS)}") from None
