"""The place-and-route stand-in: does a design fit a board?

The real flow learns this from nextpnr; here the fitter sums the
resource reports of every SoC component (CPU, peripherals, CFU) and
compares against the board inventory, with a routing-overhead margin —
designs that use every last cell do not route at speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtl.synth import ResourceReport

#: Fraction of logic cells usable before routing congestion kills timing.
UTILIZATION_LIMIT = 0.97


class FitError(RuntimeError):
    """Raised when a design cannot fit the target board."""


@dataclass
class FitResult:
    board: object
    usage: ResourceReport
    ok: bool
    messages: list = field(default_factory=list)

    @property
    def cell_utilization(self):
        return self.usage.logic_cells / self.board.logic_cells

    def summary(self):
        b, u = self.board, self.usage
        bram_blocks = u.bram_blocks(self._bram_block_bits())
        total_blocks = b.bram_bits // self._bram_block_bits()
        lines = [
            f"fit on {b.name}: {'OK' if self.ok else 'FAIL'}",
            f"  logic cells {u.logic_cells:>6} / {b.logic_cells}"
            f"  ({100 * self.cell_utilization:.1f}%)",
            f"  DSP blocks  {u.dsps:>6} / {b.dsp_blocks}",
            f"  BRAM blocks {bram_blocks:>6} / {total_blocks}",
        ]
        lines += [f"  ! {m}" for m in self.messages]
        return "\n".join(lines)

    def _bram_block_bits(self):
        return 4096 if self.board.family == "ice40" else 36 * 1024


def fit(board, *reports):
    """Check combined resource reports against a board; returns FitResult."""
    usage = ResourceReport()
    for report in reports:
        usage = usage + report
    messages = []
    ok = True
    if usage.logic_cells > UTILIZATION_LIMIT * board.logic_cells:
        ok = False
        messages.append(
            f"logic cells: need {usage.logic_cells}, "
            f"routable limit {int(UTILIZATION_LIMIT * board.logic_cells)}"
        )
    if usage.dsps > board.dsp_blocks:
        ok = False
        messages.append(f"DSP blocks: need {usage.dsps}, have {board.dsp_blocks}")
    if usage.bram_bits > board.bram_bits:
        ok = False
        messages.append(
            f"block RAM: need {usage.bram_bits} bits, have {board.bram_bits}"
        )
    return FitResult(board=board, usage=usage, ok=ok, messages=messages)


def require_fit(board, *reports):
    result = fit(board, *reports)
    if not result.ok:
        raise FitError(result.summary())
    return result
