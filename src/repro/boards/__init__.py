"""Board models and the resource fitter."""

from .board import ARTY_A7_35T, BOARDS, FOMU, ICEBREAKER, ORANGECRAB, Board, get_board
from .fitter import UTILIZATION_LIMIT, FitError, FitResult, fit, require_fit

__all__ = [
    "ARTY_A7_35T", "BOARDS", "Board", "FOMU", "FitError", "FitResult",
    "ICEBREAKER", "ORANGECRAB", "UTILIZATION_LIMIT", "fit", "get_board",
    "require_fit",
]
