"""The user-facing API: the deploy -> profile -> optimize loop.

A :class:`Playground` binds a model to a board and walks the paper's
iterative methodology:

>>> pg = Playground(board=FOMU, model=load("dscnn_kws"),
...                 cpu_config=FOMU_BASELINE_CPU)     # doctest: +SKIP
>>> pg.deploy()            # link the image, fit the FPGA
>>> profile = pg.profile() # per-operator cycle attribution
>>> pg.upgrade_to_quad_spi()  # ...optimize, then loop again

Every optimization surface in the paper has a method here: kernel
swaps, CFU attachment, CPU reconfiguration, memory-map changes, linker
placement, SoC feature removal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..boards import fit
from ..kernels.reference import reference_variants
from ..perf.estimator import estimate_inference
from ..rtl.synth import ResourceReport
from ..soc import Soc, link
from .tracing import Tracer


class PlaygroundError(RuntimeError):
    pass


@dataclass
class BuildReport:
    """Output of one build: fit result + image layout + the estimate."""

    fit: object
    layout: object
    estimate: object

    @property
    def ok(self):
        return self.fit.ok

    def summary(self):
        parts = [self.fit.summary(), self.layout.summary(),
                 self.estimate.summary(split_conv_1x1=True)]
        return "\n".join(parts)


class Playground:
    """One co-design session: a model deployed to a board."""

    def __init__(self, board, model, cpu_config=None, clock_hz=None,
                 tracer=None):
        self.board = board
        self.model = model
        self.tracer = tracer if tracer is not None else Tracer()
        self.soc = Soc(board, cpu_config, clock_hz=clock_hz)
        self.variants = reference_variants()
        self.cfu = None
        self.cfu_resources = ResourceReport()
        self.placement = {}
        self._deployed = False
        self.history = []  # (label, total_cycles) checkpoints

    # --- optimization surfaces ----------------------------------------------------
    def swap_kernel(self, *variants):
        """Register optimized kernel variants (highest priority first)."""
        self.variants = self.variants.extended(*variants)
        return self

    def reset_kernels(self):
        self.variants = reference_variants()
        return self

    def attach_cfu(self, cfu_model, resources=None):
        """Attach a CFU (software model object) with its gateware cost."""
        self.cfu = cfu_model
        if resources is None and hasattr(cfu_model, "resources"):
            resources = cfu_model.resources()
        self.cfu_resources = resources or ResourceReport()
        return self

    def set_cpu(self, cpu_config):
        self.soc.with_cpu(cpu_config)
        return self

    def reconfigure_cpu(self, **changes):
        self.soc.with_cpu(self.soc.cpu_config.evolve(**changes))
        return self

    def upgrade_to_quad_spi(self):
        self.soc.upgrade_to_quad_spi()
        return self

    def remove_soc_feature(self, name):
        self.soc.remove_peripheral(name)
        return self

    def place_section(self, section, region):
        """Linker-script change: move a section to another region."""
        self.soc.memory_map.get(region)  # validate the region exists
        self.placement[section] = region
        return self

    # --- the loop -------------------------------------------------------------------
    def deploy(self, require_fit=True):
        """Link the image and fit the FPGA; the paper's 'Deploy' step."""
        with self.tracer.span("deploy", model=self.model.name,
                              board=self.board.name) as span:
            layout = link(self.soc, self.model, self.placement)
            fit_result = self.fit()
            span.attrs["fit"] = fit_result.ok
            if require_fit and not fit_result.ok:
                self.tracer.count("fit_reject")
                raise PlaygroundError(
                    f"design does not fit:\n{fit_result.summary()}")
            self._deployed = True
            return BuildReport(fit=fit_result, layout=layout,
                               estimate=self.profile())

    def profile(self, checkpoint=None, simulate=False, budget=None,
                min_share=0.02, drift_band=None, sim_backend="auto"):
        """Per-operator cycle attribution; the paper's 'Profile' step.

        With ``simulate=True`` the analytic estimate is cross-validated
        on the ISA simulator (:mod:`repro.core.simprofile`): each
        dominant opcode class's cost trace is synthesized into ~``budget``
        instructions of real firmware, run cycle-modelled, and the
        estimate rescaled by the measured drift — raising
        :exc:`~repro.core.simprofile.ProfileDriftError` if estimator and
        simulator disagree beyond ``drift_band``.  Returns a
        :class:`~repro.core.simprofile.SimulatedProfile` in that case.
        ``sim_backend`` selects the simulator's execution tier (see
        :data:`repro.cpu.machine.SIM_BACKENDS`); cycle counts are
        identical across tiers.
        """
        with self.tracer.span("profile", model=self.model.name,
                              checkpoint=checkpoint, simulate=simulate) as span:
            estimate = estimate_inference(self.model, self.system(),
                                          self.variants, tracer=self.tracer)
            span.attrs["cycles"] = estimate.total_cycles
            if simulate:
                from .simprofile import (DEFAULT_BUDGET, DEFAULT_DRIFT_BAND,
                                         simulate_profile)
                result = simulate_profile(
                    self, budget=budget or DEFAULT_BUDGET,
                    min_share=min_share,
                    drift_band=drift_band or DEFAULT_DRIFT_BAND,
                    estimate=estimate, sim_backend=sim_backend)
                span.attrs["simulated_cycles"] = result.total_cycles
                span.attrs["drift"] = round(result.drift, 4)
        self.tracer.count("profile")
        result = result if simulate else estimate
        if checkpoint:
            self.history.append((checkpoint, result.total_cycles))
        return result

    def fit(self):
        return fit(self.board, self.soc.resources(), self.cfu_resources)

    def system(self):
        return self.soc.system_config(placement=self.placement)

    # --- verification & introspection ----------------------------------------------
    def run_inference(self, input_array):
        """Numerically run the model with the *optimized* kernels."""
        from .golden import variant_interpreter

        return variant_interpreter(self.model, self.variants).invoke(input_array)

    def golden_test(self, input_array=None, seed=0):
        """Full-inference golden test: optimized kernels vs reference
        (Section II-E).  Raises AssertionError on any mismatch."""
        from .golden import run_golden_inference

        return run_golden_inference(self.model, self.variants,
                                    input_array=input_array, seed=seed)

    def emulator(self, with_timing=True):
        from ..emu import Emulator

        return Emulator(self.soc, cfu=self.cfu, with_timing=with_timing,
                        tracer=self.tracer)

    def speedup_history(self):
        if not self.history:
            return []
        base = self.history[0][1]
        return [(label, base / cycles) for label, cycles in self.history]

    def summary(self):
        estimate = self.profile()
        lines = [
            f"Playground: {self.model.name} on {self.board.name}",
            f"  {self.soc!r}",
            f"  CFU: {getattr(self.cfu, 'name', 'none')}",
            estimate.summary(split_conv_1x1=True),
            self.fit().summary(),
        ]
        return "\n".join(lines)
