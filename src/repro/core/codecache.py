"""Persistent cross-process code cache for generated simulator code.

Tier-2 basic-block translation (:mod:`repro.cpu.translate`) and the
compiled RTL backend (:mod:`repro.rtl.compile`) both *code-generate*
Python source deterministically from their inputs: a block's source is
a pure function of the instruction bytes and the timing configuration;
a module's ``comb``/``tick`` pair is a pure function of the netlist
structure.  That makes the generated source content-addressable — the
same firmware explored by forty DSE workers should be code-generated
*once per host, ever*, not once per worker per trial.

:class:`CodeCache` stores generated source keyed by a SHA-256 of the
canonical JSON of the generator's inputs, on the same sharded
atomic-rename layout as the DSE :class:`~repro.dse.cache.EvaluationCache`
(``root/<key[:2]>/<key>.json``), fronted by an in-process dict so the
disk is touched once per key per process.  Corrupt, torn, or
foreign-schema files read as misses — a broken shard costs one
re-generation, never an exception.

The cache stores *source text*, never code objects: every consumer
re-``exec``-utes the source and re-binds its own live objects (machine
methods, cache instances, signal slots), so nothing process-specific
ever lands on disk and any process can consume any other's entries.

A process-wide default cache is configured with :func:`configure` or
the ``REPRO_CODECACHE_DIR`` environment variable; ``None`` means
in-memory only (still deduplicates within the process).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

CODECACHE_SCHEMA_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached falsy value.
MISS = object()


def canonical_payload(payload):
    """The canonical JSON text hashed into a cache key."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def code_key(kind, payload):
    """Content-address one generator invocation: its kind + inputs."""
    text = canonical_payload({"kind": kind, "schema": CODECACHE_SCHEMA_VERSION,
                              "payload": payload})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CodeCacheStats:
    """Hit/miss/store tallies, split by layer (memory vs disk)."""

    __slots__ = ("memory_hits", "disk_hits", "misses", "stores")

    def __init__(self):
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def hits(self):
        return self.memory_hits + self.disk_hits

    def as_dict(self):
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores}


class CodeCache:
    """Two-layer (dict + sharded JSON files) generated-source cache.

    ``cache_dir=None`` keeps entries in memory only — the process still
    deduplicates repeat generations, but nothing persists.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir
        self._memory = {}
        self.stats = CodeCacheStats()

    # --- lookup --------------------------------------------------------------------
    def get(self, key):
        """The cached value document for ``key``, or :data:`MISS`."""
        if key in self._memory:
            self.stats.memory_hits += 1
            return self._memory[key]
        if self.cache_dir is not None:
            value = self._load(key)
            if value is not MISS:
                self._memory[key] = value
                self.stats.disk_hits += 1
                return value
        self.stats.misses += 1
        return MISS

    def put(self, key, value):
        """Store a JSON-serializable value document under ``key``."""
        self._memory[key] = value
        self.stats.stores += 1
        if self.cache_dir is not None:
            self._store(key, value)
        return value

    def __len__(self):
        return len(self._memory)

    # --- disk layer (EvaluationCache layout) ----------------------------------------
    def _path(self, key):
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def _load(self, key):
        try:
            with open(self._path(key)) as handle:
                document = json.load(handle)
            if not isinstance(document, dict):
                return MISS
            if document.get("schema") != CODECACHE_SCHEMA_VERSION:
                return MISS
            return document["value"]
        except (OSError, ValueError, KeyError, TypeError):
            return MISS

    def _store(self, key, value):
        path = self._path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        except OSError:
            return  # unwritable cache dir: stay in-memory only
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"schema": CODECACHE_SCHEMA_VERSION, "key": key,
                           "value": value}, handle)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


# --- the process-wide default ---------------------------------------------------
_default_cache = None


def default_cache():
    """The process-wide :class:`CodeCache` (created on first use from
    ``REPRO_CODECACHE_DIR``, in-memory if unset)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = CodeCache(os.environ.get("REPRO_CODECACHE_DIR")
                                   or None)
    return _default_cache


def configure(cache_dir):
    """Point the process-wide cache at ``cache_dir`` (None = in-memory).

    Returns the new cache.  Existing consumers that captured the old
    default keep it; new :func:`default_cache` calls see this one.
    """
    global _default_cache
    _default_cache = CodeCache(cache_dir)
    return _default_cache
