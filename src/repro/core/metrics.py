"""Labelled metrics: counters, gauges, histograms — mergeable across workers.

The observability companion to :mod:`repro.core.tracing`: where the
tracer records *when* things happened (spans on a clock), the metrics
registry records *how much* happened (monotonic counters, last-value
gauges, distribution histograms), keyed by name + sorted label set so
series from different subsystems never collide.

Every producer in the stack feeds the same registry:

- the ISA machine exports its instruction mix and decode-cache health
  (:meth:`repro.cpu.machine.Machine.export_metrics`);
- the timing model's trace-driven caches export i/d-cache hit counters;
- the SoC bus exports per-region read/write traffic
  (:meth:`repro.soc.bus.SocBus.export_metrics`);
- the CFU adapters export per-opcode invocation counts and occupancy
  (:class:`repro.cfu.interface.MeteredCfu`);
- the TFLM interpreter exports per-operator cycles
  (:func:`repro.tflm.interpreter.metrics_listener`).

Registries snapshot to plain JSON-serializable dicts and merge
associatively, so DSE workers can each collect locally and the parent
can fold the results together (the same pattern the evaluation cache
uses for results).
"""

from __future__ import annotations

import json

METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (cycles-ish magnitudes).
DEFAULT_BUCKETS = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)


def _label_key(labels):
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = tuple(labels)
        self.value = 0

    def add(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount
        return self.value

    def inc(self):
        return self.add(1)

    def _merge(self, other):
        self.value += other.value

    def _state(self):
        return {"value": self.value}

    def _restore(self, state):
        self.value = state["value"]


class Gauge:
    """A last-value-wins measurement."""

    kind = "gauge"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = tuple(labels)
        self.value = 0

    def set(self, value):
        self.value = value
        return self.value

    def _merge(self, other):
        self.value = other.value

    def _state(self):
        return {"value": self.value}

    def _restore(self, state):
        self.value = state["value"]


class Histogram:
    """A bucketed distribution (cumulative counts per upper bound)."""

    kind = "histogram"

    def __init__(self, name, labels=(), buckets=DEFAULT_BUCKETS):
        self.name = name
        self.labels = tuple(labels)
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = +inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        return self.count

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def _merge(self, other):
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: bucket bounds differ "
                f"({self.buckets} vs {other.buckets})")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count

    def _state(self):
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "total": self.total, "count": self.count}

    def _restore(self, state):
        self.buckets = tuple(state["buckets"])
        self.counts = list(state["counts"])
        self.total = state["total"]
        self.count = state["count"]


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Get-or-create home for every metric series of one run."""

    def __init__(self):
        self._series = {}

    # --- creation ----------------------------------------------------------------
    def _get(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, labels=key[1], **kwargs)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(
                f"metric {name!r} already registered as {series.kind}, "
                f"not {cls.kind}")
        return series

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, buckets=DEFAULT_BUCKETS, **labels):
        return self._get(Histogram, name, labels, buckets=buckets)

    # --- access ------------------------------------------------------------------
    def value(self, name, **labels):
        """The current value of a counter/gauge (KeyError if absent)."""
        return self._series[(name, _label_key(labels))].value

    def series(self):
        """Every metric, deterministically ordered by (name, labels)."""
        return [self._series[key] for key in sorted(self._series)]

    def __len__(self):
        return len(self._series)

    def __contains__(self, name):
        return any(key[0] == name for key in self._series)

    # --- merge & snapshot (the DSE-worker protocol) --------------------------------
    def merge(self, other):
        """Fold another registry into this one (counters/histograms add,
        gauges take the incoming value).  Associative, so worker results
        can be reduced in any grouping."""
        for key in sorted(other._series):
            theirs = other._series[key]
            key_labels = dict(theirs.labels)
            if isinstance(theirs, Histogram):
                mine = self.histogram(theirs.name, buckets=theirs.buckets,
                                      **key_labels)
            elif isinstance(theirs, Gauge):
                mine = self.gauge(theirs.name, **key_labels)
            else:
                mine = self.counter(theirs.name, **key_labels)
            mine._merge(theirs)
        return self

    def snapshot(self):
        """A plain-dict snapshot (JSON-serializable, schema-versioned)."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "series": [
                {"name": series.name, "labels": list(series.labels),
                 "kind": series.kind, **series._state()}
                for series in self.series()
            ],
        }

    @classmethod
    def from_snapshot(cls, data):
        if data.get("schema") != METRICS_SCHEMA_VERSION:
            raise ValueError(f"unsupported metrics schema {data.get('schema')!r}")
        registry = cls()
        for item in data["series"]:
            series_cls = _KINDS[item["kind"]]
            series = series_cls(item["name"],
                                labels=tuple(tuple(p) for p in item["labels"]))
            series._restore(item)
            registry._series[(series.name, series.labels)] = series
        return registry

    def export_json(self, path):
        """Write the snapshot as JSON; returns the series count."""
        snapshot = self.snapshot()
        with open(path, "w") as handle:
            json.dump(snapshot, handle, sort_keys=True, indent=1)
            handle.write("\n")
        return len(snapshot["series"])

    # --- human summary ----------------------------------------------------------
    def summary(self):
        lines = [f"metrics: {len(self._series)} series"]
        for series in self.series():
            labels = ",".join(f"{k}={v}" for k, v in series.labels)
            tag = f"{series.name}{{{labels}}}" if labels else series.name
            if isinstance(series, Histogram):
                lines.append(f"  {tag:48s} n={series.count} "
                             f"mean={series.mean:,.1f}")
            else:
                value = series.value
                shown = f"{value:,}" if isinstance(value, int) else f"{value:,.2f}"
                lines.append(f"  {tag:48s} {shown}")
        return "\n".join(lines)
