"""Projects: CFU Playground's ``proj/`` directory structure, as objects.

In the real framework each accelerator effort lives in a project
directory bundling the CFU gateware, the optimized kernels, the model,
and the board configuration, driven by ``make`` targets.  Here a
:class:`Project` bundles the same pieces and :meth:`Project.build`
produces the same artifacts — CFU Verilog, resource/fit report, image
layout, serialized model, cycle estimate — into an output directory.

The two case-study projects from Section III ship in the registry:

- ``mnv2_first``      — MobileNetV2 on Arty with CFU1 (Section III-A);
- ``kws_micro_accel`` — DS-CNN KWS on Fomu with CFU2 (Section III-B);
- ``proj_template``   — the starting point users copy, no CFU.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..accel.kws.model import KwsCfu
from ..accel.kws.resources import cfu2_resources
from ..accel.kws.rtl import KwsCfu2Rtl
from ..accel.mnv2.model import Mnv2Cfu
from ..accel.mnv2.resources import stage_resources
from ..accel.mnv2.rtl import Cfu1Rtl
from ..boards import ARTY_A7_35T, FOMU
from ..cpu.vexriscv import ARTY_DEFAULT, VexRiscvConfig
from ..kernels.conv1x1 import OverlapInput
from ..kernels.kws import kws_variants
from ..models import load
from ..tflm.serialize import save_model
from .playground import Playground


@dataclass
class ProjectSpec:
    """Declarative description of one project."""

    name: str
    description: str
    board: object
    model_factory: object                 # () -> Model
    cpu_config: VexRiscvConfig = None
    kernel_factory: object = None         # () -> [KernelVariant]
    cfu_factory: object = None            # () -> CfuModel
    rtl_factory: object = None            # () -> RtlCfu (for Verilog emit)
    cfu_resources: object = None          # ResourceReport
    removed_features: tuple = ()
    quad_spi: bool = False
    placement: dict = field(default_factory=dict)


@dataclass
class BuildArtifacts:
    """What `make` leaves behind."""

    fit: object
    layout: object
    estimate: object
    verilog_path: str = None
    model_path: str = None
    report_path: str = None

    @property
    def ok(self):
        return self.fit.ok


class Project:
    """An instantiated project: a configured Playground plus build flow."""

    def __init__(self, spec):
        self.spec = spec
        self.model = spec.model_factory()
        self.playground = Playground(spec.board, self.model,
                                     cpu_config=spec.cpu_config)
        for feature in spec.removed_features:
            self.playground.remove_soc_feature(feature)
        if spec.quad_spi:
            self.playground.upgrade_to_quad_spi()
        for section, region in spec.placement.items():
            self.playground.place_section(section, region)
        if spec.kernel_factory is not None:
            self.playground.swap_kernel(*spec.kernel_factory())
        if spec.cfu_factory is not None:
            self.playground.attach_cfu(spec.cfu_factory(),
                                       resources=spec.cfu_resources)

    @property
    def name(self):
        return self.spec.name

    def build(self, output_dir=None):
        """The `make bitstream && make prog` equivalent."""
        report = self.playground.deploy(require_fit=False)
        artifacts = BuildArtifacts(fit=report.fit, layout=report.layout,
                                   estimate=report.estimate)
        if output_dir is not None:
            os.makedirs(output_dir, exist_ok=True)
            if self.spec.rtl_factory is not None:
                verilog = self.spec.rtl_factory().verilog()
                artifacts.verilog_path = os.path.join(output_dir, "cfu.v")
                with open(artifacts.verilog_path, "w") as handle:
                    handle.write(verilog)
            artifacts.model_path = os.path.join(
                output_dir, f"{self.model.name}.rtflm")
            save_model(self.model, artifacts.model_path)
            artifacts.report_path = os.path.join(output_dir, "build_report.txt")
            with open(artifacts.report_path, "w") as handle:
                handle.write(report.summary() + "\n")
        return artifacts

    def golden_test(self):
        return self.playground.golden_test()

    def profile(self, **kwargs):
        return self.playground.profile(**kwargs)


def _kws_cpu():
    return VexRiscvConfig(
        bypassing=False, branch_prediction="none", multiplier="single_cycle",
        divider="none", shifter="iterative", icache_bytes=4096,
        dcache_bytes=0, hw_error_checking=False,
    )


def _registry():
    return {
        "proj_template": ProjectSpec(
            name="proj_template",
            description="Starting point: reference kernels, no CFU "
                        "(copy me to begin a new accelerator)",
            board=ARTY_A7_35T,
            model_factory=lambda: load("dscnn_kws"),
            cpu_config=ARTY_DEFAULT,
        ),
        "mnv2_first": ProjectSpec(
            name="mnv2_first",
            description="Section III-A: MobileNetV2 1x1-conv acceleration "
                        "on Arty A7-35T with CFU1",
            board=ARTY_A7_35T,
            model_factory=lambda: load("mobilenet_v2", width_multiplier=0.75,
                                       num_classes=100),
            cpu_config=ARTY_DEFAULT,
            kernel_factory=lambda: [OverlapInput()],
            cfu_factory=lambda: Mnv2Cfu(pipelined_input=True),
            rtl_factory=lambda: Cfu1Rtl(channels=64, filter_words=512,
                                        input_words=64),
            cfu_resources=stage_resources("overlap_input"),
        ),
        "kws_micro_accel": ProjectSpec(
            name="kws_micro_accel",
            description="Section III-B: DS-CNN keyword spotting on Fomu "
                        "with CFU2 (SoC diet + QSPI + SRAM sections)",
            board=FOMU,
            model_factory=lambda: load("dscnn_kws"),
            cpu_config=_kws_cpu(),
            kernel_factory=lambda: list(
                kws_variants(postproc=True, specialized=True)),
            cfu_factory=KwsCfu,
            rtl_factory=KwsCfu2Rtl,
            cfu_resources=cfu2_resources(),
            removed_features=("timer", "ctrl", "rgb", "touch"),
            quad_spi=True,
            placement={"kernel_text": "sram", "model_weights": "sram"},
        ),
    }


PROJECTS = _registry()


def load_project(name):
    """Instantiate a registered project by name."""
    try:
        spec = PROJECTS[name]
    except KeyError:
        raise KeyError(
            f"unknown project {name!r}; available: {sorted(PROJECTS)}"
        ) from None
    return Project(spec)


def list_projects():
    return {name: spec.description for name, spec in sorted(PROJECTS.items())}
