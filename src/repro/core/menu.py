"""The menu-driven firmware, as a host-side model.

Section II-E: "The menu-driven software contains kernel-level unit tests
from the TFLite Micro library.  It also contains full-inference golden
tests, with set inputs and expected outputs for each provided model."
Real CFU Playground presents this menu over the board's TTY; here the
same menu runs against the deployment model, writing its output through
the SoC's UART peripheral so tests and demos observe the authentic
interface.
"""

from __future__ import annotations

import numpy as np

from .golden import golden_input, run_golden_inference


class Menu:
    """A nested menu tree driven by single-character selections."""

    def __init__(self, title, console):
        self.title = title
        self.console = console
        self.entries = {}  # key -> (label, callable or Menu)

    def add(self, key, label, action):
        if key in self.entries:
            raise ValueError(f"duplicate menu key {key!r}")
        self.entries[key] = (label, action)
        return self

    def render(self):
        self.console.write(f"\n=== {self.title} ===\n")
        for key, (label, _) in sorted(self.entries.items()):
            self.console.write(f" {key}: {label}\n")
        self.console.write("> ")

    def select(self, key):
        if key not in self.entries:
            self.console.write(f"unknown selection {key!r}\n")
            return None
        label, action = self.entries[key]
        self.console.write(f"{label}\n")
        if isinstance(action, Menu):
            action.render()
            return action
        return action()


class UartConsole:
    """Writes through a SoC UART peripheral (so output is observable on
    the 'board' side) while also collecting a transcript."""

    def __init__(self, uart=None):
        self.uart = uart
        self.transcript = []

    def write(self, text):
        self.transcript.append(text)
        if self.uart is not None:
            for byte in text.encode("ascii", errors="replace"):
                self.uart._tx(byte)

    def text(self):
        return "".join(self.transcript)


def build_firmware_menu(playground, console=None):
    """The stock CFU Playground menu for a deployment."""
    if console is None:
        try:
            uart = playground.soc.peripheral("uart")
        except KeyError:
            uart = None
        console = UartConsole(uart)
    root = Menu(f"CFU Playground: {playground.model.name}", console)
    tests = Menu("TFLM kernel unit tests", console)
    root.add("1", "TFLite Micro tests", tests)

    def golden_test():
        try:
            run_golden_inference(playground.model, playground.variants)
        except AssertionError as error:
            console.write(f"golden test FAILED: {error}\n")
            return False
        console.write("golden test OK\n")
        return True

    def run_model():
        x = golden_input(playground.model)
        output = playground.run_inference(x)
        top = int(np.argmax(output))
        console.write(f"inference done, output shape {output.shape}, "
                      f"argmax {top}\n")
        return output

    def profile():
        estimate = playground.profile()
        console.write(estimate.summary(split_conv_1x1=True) + "\n")
        return estimate

    def project_menu():
        fit = playground.fit()
        console.write(fit.summary() + "\n")
        return fit

    tests.add("g", "full-inference golden test", golden_test)
    tests.add("k", "kernel-level unit tests", lambda: _kernel_tests(
        playground, console))
    root.add("2", "run model on golden input", run_model)
    root.add("3", "profile one inference", profile)
    root.add("4", "project resource report", project_menu)
    return root, console


def _kernel_tests(playground, console):
    """Kernel-level checks: each operator, optimized vs reference."""
    from ..tflm.interpreter import Interpreter, reference_registry
    from .golden import variant_registry

    model = playground.model
    x = golden_input(model)
    reference_outputs = {}

    def capture(op, inputs, output):
        reference_outputs[op.name] = output

    Interpreter(model, reference_registry(),
                listeners=[capture]).invoke(x)
    registry = variant_registry(playground.variants, model)
    failures = 0
    checked = 0

    def compare(op, inputs, output):
        nonlocal failures, checked
        checked += 1
        if not np.array_equal(output, reference_outputs[op.name]):
            failures += 1
            console.write(f"  FAIL {op.name}\n")

    Interpreter(model, registry, listeners=[compare]).invoke(x)
    console.write(f"kernel tests: {checked - failures}/{checked} OK\n")
    return failures == 0
