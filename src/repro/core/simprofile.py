"""Simulation-backed profiling: cross-validate the analytic estimator.

Whole-model inference runs for 10^8-10^9 cycles, far beyond the Python
ISA simulator; the analytic :mod:`repro.perf.cost` model covers that
scale but is only as good as its unit costs.  This module closes the
loop between the two (the paper's Section II-E simulation story meets
its Section III profile tables):

1. Every kernel variant's :class:`~repro.perf.cost.CostContext` records
   a *primitive-call trace* (so many ALU ops, loads with a given
   locality, ...) alongside the cycle math.
2. For each dominant opcode class in an
   :class:`~repro.perf.estimator.InferenceEstimate`, the trace of the
   class's most expensive operator is scaled down to an instruction
   budget and synthesized into real RV32IM firmware — dependent ALU
   chains, cache-window load loops, loop-closing branches — which runs
   on the cycle-modelled :class:`~repro.emu.renode.Emulator` under the
   :class:`~repro.cpu.profiler.MachineProfiler`.
3. The *same* scaled counts replay through a fresh analytic context, so
   simulated and analytic cycles describe the identical instruction
   stream.  Their ratio is the class's **drift**; it rescales the
   full-size analytic estimate into the simulation-backed one, and
   :func:`simulate_profile` asserts it stays inside a calibrated band
   (:exc:`ProfileDriftError` otherwise — the estimator and the
   simulator disagree about the machine, which is a bug in one of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.assembler import assemble
from ..cpu.profiler import MachineProfiler
from ..perf.cost import CostContext

#: Simulated/analytic cycle ratio band (per opcode class).  Calibrated
#: against the Arty and Fomu reference CPUs; see
#: ``benchmarks/bench_profile_overhead.py`` for the measured values.
DEFAULT_DRIFT_BAND = (0.35, 2.5)

#: Budget (simulated instructions per opcode class) for the default run.
DEFAULT_BUDGET = 40_000

_UNROLL = 8
#: Odd stride (> a cache line) so "rand" walks defeat spatial locality
#: while still visiting a power-of-two window uniformly.
_RAND_STRIDE = 97


class ProfileDriftError(RuntimeError):
    """Simulated and analytic cycles disagree beyond the allowed band."""

    def __init__(self, message, offenders=()):
        super().__init__(message)
        self.offenders = list(offenders)


def _pow2_floor(value):
    """Largest power of two <= value (value >= 1)."""
    return 1 << (int(value).bit_length() - 1)


class _DataAllocator:
    """Hands out non-overlapping data windows in the top half of each
    region (firmware code occupies the bottom)."""

    def __init__(self, memory_map):
        self._map = memory_map
        self._cursor = {}
        self._windows = {}

    def window(self, region_name, desired):
        region = self._map.get(region_name)
        start = self._cursor.get(region_name, region.base + region.size // 2)
        available = region.end - start
        size = _pow2_floor(max(256, min(desired, max(256, available))))
        key = (region_name, size)
        if key in self._windows:
            return self._windows[key]
        if start + size > region.end:
            # Out of fresh space: reuse the region's first window slot.
            start = region.base + region.size // 2
        base = (start + size - 1) & ~(size - 1)  # align to window size
        self._cursor[region_name] = base + size
        self._windows[key] = (base, size)
        return base, size


class _FirmwareBuilder:
    """Synthesizes a CostContext trace into profiled RV32IM assembly.

    Each primitive becomes one labelled segment, so the
    :class:`~repro.cpu.profiler.MachineProfiler` attributes cycles per
    primitive.  The builder tracks exactly what it emits: ``replay()``
    charges the identical dynamic instruction stream to an analytic
    context, which is what makes the drift ratio meaningful.
    """

    def __init__(self, system, allocator, region_of):
        self.system = system
        self.allocator = allocator
        self.region_of = region_of     # section name -> region name
        self.lines = []
        self.body_static = 0           # static instrs inside segments
        self.replay_ops = []           # (method, args, kwargs) for replay
        self._seg = 0

    # --- replay bookkeeping -----------------------------------------------------
    def _rep(self, method, *args, **kwargs):
        self.replay_ops.append((method, args, kwargs))

    def _label(self, kind):
        self._seg += 1
        name = f"seg{self._seg}_{kind}"
        self.lines.append(f"{name}:")
        return name

    def _loop_overhead(self, iters):
        """Replay charge for a loop's decrement + closing bnez."""
        if iters <= 0:
            return
        self._rep("alu", iters)
        taken = (iters - 1) / iters
        self._rep("branch", iters, taken=taken, predictable=True)

    # --- compute chains -----------------------------------------------------------
    def _chain(self, kind, count, body_instr, per_replay):
        """Emit a dependent chain of ``count`` ops, unrolled by 8 in a
        loop; ``per_replay`` charges one op to the analytic context."""
        name = self._label(kind)
        emit = self.lines.append
        iters, rem = divmod(count, _UNROLL)
        if iters > 1:
            emit(f"    li t0, {iters}")
            loop = f"{name}_loop"
            emit(f"{loop}:")
            for _ in range(_UNROLL):
                emit(f"    {body_instr}")
            emit("    addi t0, t0, -1")
            emit(f"    bnez t0, {loop}")
            self.body_static += _UNROLL + 2
            per_replay(_UNROLL * iters)
            self._loop_overhead(iters)
        else:
            rem = count
        for _ in range(rem):
            emit(f"    {body_instr}")
        self.body_static += rem
        if rem:
            per_replay(rem)

    def alu(self, n):
        self.lines.append("    li t1, 1")
        self.body_static += 1
        self._rep("alu", 1)
        self._chain("alu", n, "addi t1, t1, 1",
                    lambda c: self._rep("alu", c))

    def mul(self, n):
        self.lines.append("    li t1, 3")
        self.lines.append("    li t2, 5")
        self.body_static += 2
        self._rep("alu", 2)
        self._chain("mul", n, "mul t1, t1, t2",
                    lambda c: self._rep("mul", c))

    def div(self, n):
        self.lines.append("    li t1, 1000000")
        self.lines.append("    li t2, 3")
        self.body_static += 2
        self._rep("alu", 2)
        self._chain("div", n, "div t1, t1, t2",
                    lambda c: self._rep("div", c))

    def shift(self, n, amount):
        amount = min(31, max(1, int(amount)))
        self.lines.append("    li t1, -1")
        self.body_static += 1
        self._rep("alu", 1)
        self._chain("shift", n, f"srli t1, t1, {amount}",
                    lambda c: self._rep("shift", c, amount=amount))

    # --- control flow --------------------------------------------------------------
    def branch(self, n, taken, predictable):
        # Whatever the original branch's behaviour, the synthesized one
        # is a loop-closing bnez: the replay charges its *actual* taken
        # rate, so both sides describe the same stream.
        label = self._label("branch")
        emit = self.lines.append
        if n >= 2:
            emit(f"    li t0, {n}")
            loop = f"{label}_loop"
            emit(f"{loop}:")
            emit("    addi t0, t0, -1")
            emit(f"    bnez t0, {loop}")
            self.body_static += 2
            self._loop_overhead(n)
        else:
            emit("    li t0, 0")
            emit(f"    bnez t0, {label}")
            self.body_static += 2
            self._rep("alu", 1)
            self._rep("branch", 1, taken=0.0, predictable=True)

    def call(self, n):
        name = self._label("call")
        emit = self.lines.append
        emit(f"    li t0, {n}")
        loop = f"{name}_loop"
        fn = f"{name}_fn"
        end = f"{name}_end"
        emit(f"{loop}:")
        emit(f"    jal ra, {fn}")
        emit("    addi t0, t0, -1")
        emit(f"    bnez t0, {loop}")
        emit(f"    j {end}")
        emit(f"{fn}:")
        emit("    ret")
        emit(f"{end}:")
        self.body_static += 5
        self._rep("call", n)
        self._rep("alu", 1)  # the j over the helper, executed once
        self._loop_overhead(n)

    # --- memory --------------------------------------------------------------------
    _LOADS = {1: "lbu", 2: "lhu", 4: "lw"}
    _STORES = {1: "sb", 2: "sh", 4: "sw"}

    def load(self, n, size, section, pattern, footprint):
        size = size if size in self._LOADS else 4
        region = self.region_of(section)
        desired = footprint if footprint else 0x10000
        base, window = self.allocator.window(region, desired)
        name = self._label("load")
        emit = self.lines.append
        stride = size if pattern != "rand" else _RAND_STRIDE
        align = size > 1 and pattern == "rand"
        emit(f"    li t2, {base}")
        emit(f"    li t3, {window - 1}")
        emit("    li t1, 0")
        emit(f"    li t0, {n}")
        loop = f"{name}_loop"
        emit(f"{loop}:")
        emit("    and t4, t1, t3")
        body = 1
        if align:
            emit(f"    andi t4, t4, {-size}")
            body += 1
        emit("    add t4, t4, t2")
        emit(f"    {self._LOADS[size]} t5, 0(t4)")
        emit(f"    addi t1, t1, {stride}")
        emit("    addi t0, t0, -1")
        emit(f"    bnez t0, {loop}")
        self.body_static += body + 5
        self._rep("alu", n * (body + 2))   # index math + stride bump
        self._rep("load", n, size=size, section=section,
                  pattern=("hit" if pattern == "hit" else pattern),
                  footprint=window)
        self._loop_overhead(n)

    def store(self, n, size, section):
        size = size if size in self._STORES else 4
        region = self.region_of(section)
        base, window = self.allocator.window(region, 0x10000)
        name = self._label("store")
        emit = self.lines.append
        emit(f"    li t2, {base}")
        emit(f"    li t3, {window - 1}")
        emit("    li t1, 0")
        emit(f"    li t0, {n}")
        emit("    li t5, 42")
        loop = f"{name}_loop"
        emit(f"{loop}:")
        emit("    and t4, t1, t3")
        emit("    add t4, t4, t2")
        emit(f"    {self._STORES[size]} t5, 0(t4)")
        emit(f"    addi t1, t1, {size}")
        emit("    addi t0, t0, -1")
        emit(f"    bnez t0, {loop}")
        self.body_static += 6
        self._rep("alu", n * 3)
        self._rep("store", n, size=size, section=section)
        self._loop_overhead(n)

    # --- assembly + replay --------------------------------------------------------
    def source(self):
        return "\n".join(["start:"] + self.lines + ["    ebreak", ""])

    def replay(self, code_section, code_len, setup_instructions):
        """Charge the emitted stream to a fresh analytic context."""
        ctx = CostContext(self.system, code_section=code_section)
        if setup_instructions:
            ctx.alu(setup_instructions)
        for method, args, kwargs in self.replay_ops:
            getattr(ctx, method)(*args, **kwargs)
        cycles = ctx.finish(loop_footprint_bytes=code_len)
        return cycles, ctx.instructions


#: Trace-primitive tags the builder can synthesize; cfu/cfu_busy are
#: deliberately absent — custom instructions are measured by the real
#: co-simulation (:class:`~repro.emu.renode.Emulator` + MeteredCfu), not
#: reconstructed from synthetic firmware.
_SYNTH = {"alu", "mul", "div", "shift", "branch", "call", "load", "store"}


def _scale_counts(trace, scale):
    """Scale primitive counts, keeping every nonzero primitive alive."""
    scaled = []
    for entry in trace:
        kind = entry[0]
        if kind not in _SYNTH:
            continue
        n = entry[1]
        if n <= 0:
            continue
        count = max(1, int(round(n * scale)))
        scaled.append((kind, count) + tuple(entry[2:]))
    return scaled


@dataclass
class ClassSim:
    """One opcode class's synthesized run: estimate vs simulation."""

    name: str
    estimated_cycles: float      # full-size analytic estimate
    sim_cycles: int              # measured on the synthesized firmware
    analytic_cycles: float       # analytic replay of the same firmware
    instructions: int            # simulated instruction count
    scale: float                 # trace scale factor applied
    profile: object              # per-segment cpu Profile

    @property
    def drift(self):
        return (self.sim_cycles / self.analytic_cycles
                if self.analytic_cycles else 1.0)

    @property
    def simulated_cycles(self):
        """The analytic estimate rescaled by the measured drift."""
        return self.estimated_cycles * self.drift


@dataclass
class SimulatedProfile:
    """An :class:`InferenceEstimate` cross-checked by ISA simulation."""

    model_name: str
    estimate: object
    classes: list = field(default_factory=list)
    skipped: dict = field(default_factory=dict)  # class -> estimated cycles
    budget: int = DEFAULT_BUDGET
    min_share: float = 0.0
    drift_band: tuple = DEFAULT_DRIFT_BAND

    @property
    def total_estimated(self):
        return (sum(c.estimated_cycles for c in self.classes)
                + sum(self.skipped.values()))

    @property
    def total_cycles(self):
        """Simulation-corrected total (skipped classes stay analytic)."""
        return (sum(c.simulated_cycles for c in self.classes)
                + sum(self.skipped.values()))

    @property
    def drift(self):
        """Overall simulated/estimated ratio across covered classes."""
        est = sum(c.estimated_cycles for c in self.classes)
        sim = sum(c.simulated_cycles for c in self.classes)
        return sim / est if est else 1.0

    def drift_offenders(self, band=None):
        lo, hi = band or self.drift_band
        return [c for c in self.classes if not lo <= c.drift <= hi]

    def check_drift(self, band=None):
        offenders = self.drift_offenders(band)
        if offenders:
            detail = ", ".join(f"{c.name}={c.drift:.2f}" for c in offenders)
            lo, hi = band or self.drift_band
            raise ProfileDriftError(
                f"estimator/simulator drift outside [{lo}, {hi}]: {detail}",
                offenders)
        return self

    def summary(self):
        lines = [
            f"simulated profile: {self.model_name} "
            f"(budget {self.budget:,} instr/class)",
            f"  {'class':20s} {'estimated':>14s} {'drift':>6s} "
            f"{'simulated':>14s}",
        ]
        for sim in sorted(self.classes, key=lambda c: -c.simulated_cycles):
            lines.append(
                f"  {sim.name:20s} {sim.estimated_cycles:>14,.0f} "
                f"{sim.drift:>6.2f} {sim.simulated_cycles:>14,.0f}")
        for name, cycles in sorted(self.skipped.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:20s} {cycles:>14,.0f}      - "
                         f"{cycles:>14,.0f}  (below min share)")
        lines.append(
            f"  total: {self.total_estimated:,.0f} estimated -> "
            f"{self.total_cycles:,.0f} simulated (drift {self.drift:.2f})")
        return "\n".join(lines)

    def folded(self):
        """Two-level flamegraph stacks: ``class;segment cycles``."""
        lines = []
        for sim in self.classes:
            lines.extend(sim.profile.folded(prefix=sim.name))
        return lines

    def export_folded(self, path):
        lines = self.folded()
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)

    def export_metrics(self, registry, **labels):
        for sim in self.classes:
            registry.counter("simprofile_estimated_cycles", cls=sim.name,
                             **labels).add(int(sim.estimated_cycles))
            registry.counter("simprofile_simulated_cycles", cls=sim.name,
                             **labels).add(int(sim.simulated_cycles))
            registry.counter("simprofile_instructions", cls=sim.name,
                             **labels).add(int(sim.instructions))
            registry.gauge("simprofile_drift", cls=sim.name,
                           **labels).set(round(sim.drift, 4))
        return registry


def _class_key(cost, names_1x1):
    if cost.opcode == "CONV_2D":
        return "CONV_2D_1x1" if cost.op_name in names_1x1 else "CONV_2D_other"
    return cost.opcode


def _simulate_class(name, trace, instructions, code_section, estimated,
                    playground, system, budget, tracer=None,
                    sim_backend="auto"):
    """Synthesize + run + replay one opcode class; returns a ClassSim."""
    from ..emu import Emulator

    scale = min(1.0, budget / max(1.0, float(instructions)))
    counts = _scale_counts(trace, scale)
    if not counts:
        return None

    emulator = Emulator(playground.soc, cfu=None, with_timing=True)
    memory_map = emulator.soc.memory_map
    allocator = _DataAllocator(memory_map)
    placement = system.placement

    def writable_section(section):
        # Writes must land in RAM: redirect stores aimed at a ROM region
        # (e.g. model_weights on flash) to wherever the arena lives.
        # Emission and replay both use the redirected section, so the
        # two sides keep describing the same stream.
        if emulator.bus.backing(placement[section]).writable:
            return section
        return "arena"

    builder = _FirmwareBuilder(system, allocator,
                               lambda section: placement[section])
    for entry in counts:
        kind = entry[0]
        if kind == "alu":
            builder.alu(entry[1])
        elif kind == "mul":
            builder.mul(entry[1])
        elif kind == "div":
            builder.div(entry[1])
        elif kind == "shift":
            builder.shift(entry[1], entry[2])
        elif kind == "branch":
            builder.branch(entry[1], entry[2], entry[3])
        elif kind == "call":
            builder.call(entry[1])
        elif kind == "load":
            builder.load(entry[1], entry[2], entry[3], entry[4], entry[5])
        elif kind == "store":
            builder.store(entry[1], entry[2], writable_section(entry[3]))

    code_region = placement[code_section]
    base = memory_map.get(code_region).base
    code, symbols = assemble(builder.source(), origin=base)
    emulator.bus.load_bytes(base, code)
    # Scope the invalidation to the pages just rewritten: decoded ops
    # and translated blocks for other classes' firmware stay warm
    # across repeated --simulate runs.
    emulator.machine.invalidate_pages(base, len(code))
    emulator.machine.pc = base

    analytic, replay_instructions = builder.replay(
        code_section, len(code),
        setup_instructions=len(code) // 4 - builder.body_static)

    profiler = MachineProfiler(emulator.machine, symbols)
    limit = int(replay_instructions * 2) + 10_000
    profile = profiler.run(max_instructions=limit, backend=sim_backend)
    if profile.truncated:
        raise RuntimeError(
            f"synthesized firmware for {name} exceeded its instruction "
            f"budget ({limit}): builder/replay disagree")
    return ClassSim(
        name=name, estimated_cycles=estimated,
        sim_cycles=profile.total_cycles, analytic_cycles=analytic,
        instructions=emulator.machine.instret, scale=scale, profile=profile)


def simulate_profile(playground, budget=DEFAULT_BUDGET, min_share=0.02,
                     drift_band=DEFAULT_DRIFT_BAND, estimate=None,
                     check=True, sim_backend="auto"):
    """Cross-validate a playground's analytic profile against the ISA
    simulator; returns a :class:`SimulatedProfile`.

    Every opcode class holding at least ``min_share`` of the estimated
    cycles gets a synthesized firmware run of about ``budget``
    instructions.  ``check=True`` raises :exc:`ProfileDriftError` when
    any class's simulated/analytic ratio leaves ``drift_band``.
    ``sim_backend`` selects the ISA execution tier (see
    :data:`repro.cpu.machine.SIM_BACKENDS`); all tiers produce identical
    cycle counts, so this only trades wall-clock for warm-up cost.
    """
    if estimate is None:
        estimate = playground.profile()
    system = playground.system()
    by_class = estimate.by_opcode(split_conv_1x1=True)
    total = sum(by_class.values()) or 1.0

    # Representative operator per class: the most expensive one.
    reps = {}
    for cost in estimate.op_costs:
        key = _class_key(cost, estimate._names_1x1)
        if key not in reps or cost.cycles > reps[key].cycles:
            reps[key] = cost

    result = SimulatedProfile(
        model_name=estimate.model_name, estimate=estimate, budget=budget,
        min_share=min_share, drift_band=drift_band)
    tracer = getattr(playground, "tracer", None)
    for name, estimated in by_class.items():
        if estimated / total < min_share:
            result.skipped[name] = estimated
            continue
        if name == "(framework)":
            trace = estimate.overhead_trace
            instructions = estimate.overhead_instructions
            code_section = "text"
        else:
            rep = reps.get(name)
            if rep is None or not rep.trace:
                result.skipped[name] = estimated
                continue
            trace = rep.trace
            instructions = rep.instructions
            code_section = rep.code_section
        if tracer is not None:
            with tracer.span("simprofile_class", cls=name) as span:
                sim = _simulate_class(name, trace, instructions,
                                      code_section, estimated, playground,
                                      system, budget,
                                      sim_backend=sim_backend)
                if sim is not None:
                    span.attrs["drift"] = round(sim.drift, 4)
        else:
            sim = _simulate_class(name, trace, instructions, code_section,
                                  estimated, playground, system, budget,
                                  sim_backend=sim_backend)
        if sim is None:
            result.skipped[name] = estimated
        else:
            result.classes.append(sim)
    if check:
        result.check_drift()
    return result
