"""The paper's two optimization ladders as executable step sequences.

Each :class:`LadderStep` mutates one aspect of the deployment — a
kernel swap, a CFU attachment, a CPU configuration change, a memory-map
or linker change — exactly mirroring the incremental moves of Sections
III-A (Fig. 4) and III-B (Fig. 6).  :func:`run_ladder` replays the steps,
re-estimating whole-model cycles and re-fitting the FPGA after each.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..accel.kws.resources import cfu2_resources
from ..accel.mnv2.resources import stage_resources
from ..boards import ARTY_A7_35T, FOMU, fit
from ..cpu.vexriscv import ARTY_DEFAULT, VexRiscvConfig
from ..kernels.conv1x1 import LADDER_VARIANTS
from ..kernels.kws import kws_variants
from ..kernels.reference import reference_variants
from ..models import load
from ..perf.estimator import estimate_inference
from ..rtl.synth import ResourceReport
from ..soc import Soc, link


@dataclass
class DeploymentState:
    """Everything that defines a running deployment at one ladder rung."""

    model: object
    soc: Soc
    variants: object
    placement: dict = field(default_factory=dict)
    cfu_resources: ResourceReport = field(default_factory=ResourceReport)

    def system(self):
        return self.soc.system_config(placement=self.placement)

    def estimate(self):
        return estimate_inference(self.model, self.system(), self.variants)

    def fit(self):
        return fit(self.soc.board, self.soc.resources(), self.cfu_resources)


@dataclass
class LadderStep:
    name: str
    description: str
    apply: object  # callable(DeploymentState) -> DeploymentState


@dataclass
class LadderResult:
    step: LadderStep
    cycles: float
    speedup: float
    op_speedup: float
    fit: object
    estimate: object

    def row(self):
        usage = self.fit.usage
        return (f"{self.step.name:16s} {self.cycles:>14,.0f} cyc  "
                f"x{self.speedup:6.2f} overall  x{self.op_speedup:6.2f} op  "
                f"{usage.logic_cells:>6} cells {usage.dsps:>2} DSP "
                f"{'OK' if self.fit.ok else 'NO-FIT'}")


def run_ladder(steps, initial_state, op_filter=None):
    """Replay a ladder; returns the list of :class:`LadderResult`.

    ``op_filter(op_cost) -> bool`` selects the operator subset whose
    speedup Fig. 4 tracks (e.g. only 1x1 convs); overall speedup uses
    total cycles.
    """
    state = initial_state
    results = []
    base_total = base_op = None
    for step in steps:
        state = step.apply(state)
        estimate = state.estimate()
        total = estimate.total_cycles
        op_cycles = (estimate.cycles_for(op_filter)
                     if op_filter else total)
        if base_total is None:
            base_total, base_op = total, op_cycles
        results.append(LadderResult(
            step=step,
            cycles=total,
            speedup=base_total / total,
            op_speedup=base_op / op_cycles if op_cycles else float("inf"),
            fit=state.fit(),
            estimate=estimate,
        ))
    return results


# --------------------------------------------------------------------------------
# Section III-A: MobileNetV2 1x1 CONV_2D on Arty (Fig. 4)
# --------------------------------------------------------------------------------

def mnv2_initial_state(model=None):
    model = model or load("mobilenet_v2", width_multiplier=0.75, num_classes=100)
    soc = Soc(ARTY_A7_35T, ARTY_DEFAULT)
    return DeploymentState(model=model, soc=soc,
                           variants=reference_variants())


def mnv2_ladder():
    """Fig. 4's bars: baseline + the nine variant swaps."""
    def baseline(state):
        return state

    steps = [LadderStep("base", "TFLM reference kernels, stock SoC", baseline)]
    for variant_cls in LADDER_VARIANTS:
        def swap(state, cls=variant_cls):
            return replace(
                state,
                variants=reference_variants().extended(cls()),
                cfu_resources=stage_resources(cls.stage),
            )
        steps.append(LadderStep(variant_cls.name, variant_cls.__doc__ or "",
                                swap))
    return steps


def is_conv_1x1(op_cost):
    return op_cost.opcode == "CONV_2D" and op_cost.variant != "reference" or (
        op_cost.opcode == "CONV_2D" and op_cost.op_name.endswith("_1x1"))


def mnv2_1x1_filter(model):
    """Predicate selecting the 1x1 CONV_2D operators of a built model."""
    names = {
        op.name for op in model.operators
        if op.opcode == "CONV_2D" and op.params.get("kernel") == (1, 1)
    }
    return lambda op_cost: op_cost.op_name in names


# --------------------------------------------------------------------------------
# Section III-B: DS-CNN keyword spotting on Fomu (Fig. 6)
# --------------------------------------------------------------------------------

#: The CPU that squeezes onto Fomu after the SoC diet (Section III-B
#: "Profile"): no caches beyond a small icache, iterative multiply,
#: software division, no bypassing, no branch prediction, no hardware
#: error checking.
FOMU_BASELINE_CPU = VexRiscvConfig(
    bypassing=False,
    branch_prediction="none",
    multiplier="iterative",
    divider="none",
    shifter="iterative",
    icache_bytes=0,
    dcache_bytes=0,
    hw_error_checking=False,
)


def kws_initial_state(model=None):
    model = model or load("dscnn_kws")
    soc = Soc(FOMU, FOMU_BASELINE_CPU)
    # The SoC diet that makes VexRiscv fit at all (Section III-B).
    soc.remove_peripheral("timer")
    soc.remove_peripheral("ctrl")
    soc.remove_peripheral("rgb")
    soc.remove_peripheral("touch")
    state = DeploymentState(model=model, soc=soc,
                            variants=reference_variants())
    link(soc, model, state.placement)  # verify the image actually fits
    return state


def kws_ladder():
    """Fig. 6's bars, from the flash-XIP baseline to the SW-specialized
    CFU2 deployment."""

    def baseline(state):
        return state

    def quadspi(state):
        state.soc.upgrade_to_quad_spi()
        return state

    def sram_ops_model(state):
        placement = dict(state.placement)
        placement.update({"kernel_text": "sram", "model_weights": "sram"})
        link(state.soc, state.model, placement)
        return replace(state, placement=placement)

    def larger_icache(state):
        cpu = state.soc.cpu_config.evolve(icache_bytes=4096)
        state.soc.with_cpu(cpu)
        return state

    def fast_mult(state):
        cpu = state.soc.cpu_config.evolve(multiplier="single_cycle")
        state.soc.with_cpu(cpu)
        return state

    def mac_conv(state):
        return replace(
            state,
            variants=reference_variants().extended(*kws_variants()),
            cfu_resources=cfu2_resources(postproc=False),
        )

    def post_proc(state):
        return replace(
            state,
            variants=reference_variants().extended(*kws_variants(postproc=True)),
            cfu_resources=cfu2_resources(postproc=True),
        )

    def sw_spec(state):
        return replace(
            state,
            variants=reference_variants().extended(
                *kws_variants(postproc=True, specialized=True)
            ),
        )

    return [
        LadderStep("base", "flash-XIP baseline on the dieted SoC", baseline),
        LadderStep("quadspi", "SPI -> Quad SPI flash interface", quadspi),
        LadderStep("sram-ops-model", "conv/dw code + weights into SRAM",
                   sram_ops_model),
        LadderStep("larger-icache", "freed CSR/logic space -> 4 kB icache",
                   larger_icache),
        LadderStep("fast-mult", "iterative -> single-cycle multiply (4 DSP)",
                   fast_mult),
        LadderStep("mac-conv", "4-way SIMD MAC CFU (remaining 4 DSP)",
                   mac_conv),
        LadderStep("post-proc", "accumulator post-processing in the CFU",
                   post_proc),
        LadderStep("sw-spec", "operator specialization (constants known)",
                   sw_spec),
    ]
