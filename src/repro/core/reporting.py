"""Experiment report generation: one markdown file with every result.

``python -m repro report --out REPORT.md`` replays the paper's
experiments (both ladders, the profile table, the CMSIS comparison, the
energy ladder, optionally a DSE pass) and renders a self-contained
markdown report with paper-vs-measured columns — the artifact a
reproduction reviewer actually wants.
"""

from __future__ import annotations

from ..models import load
from ..perf.cortex_m4 import CORTEX_M4_CLOCK_HZ, cmsis_nn_cycles
from ..perf.energy import EnergyModel
from .ladders import (
    kws_initial_state,
    kws_ladder,
    mnv2_1x1_filter,
    mnv2_initial_state,
    mnv2_ladder,
    run_ladder,
)

PAPER_FIG4 = {"sw-1x1": 2.0, "cfu-postproc": 2.3, "cfu-mac4": 9.8,
              "mac4-run1": 26.0, "incl-postproc": 31.1,
              "overlap-input": 55.0}
PAPER_FIG6 = {"quadspi": 3.04, "sram-ops-model": 7.84, "larger-icache": 8.3,
              "fast-mult": 15.35, "mac-conv": 32.10, "post-proc": 37.64,
              "sw-spec": 75.0}


def _table(headers, rows):
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def fig4_section():
    state = mnv2_initial_state()
    results = run_ladder(mnv2_ladder(), state,
                         op_filter=mnv2_1x1_filter(state.model))
    rows = []
    for r in results:
        paper = PAPER_FIG4.get(r.step.name)
        rows.append((r.step.name, f"{r.op_speedup:.2f}x",
                     f"{paper}x" if paper else "—",
                     f"{r.fit.usage.logic_cells:,}",
                     r.fit.usage.dsps))
    text = ["## Figure 4 — MNV2 1x1 CONV_2D ladder (Arty A7-35T)", ""]
    text.append(_table(
        ("step", "measured", "paper", "cells", "DSP"), rows))
    text.append("")
    text.append(f"Overall MNV2 speedup: {results[-1].speedup:.2f}x "
                "(paper: 3x).")
    return "\n".join(text), results


def fig6_section():
    results = run_ladder(kws_ladder(), kws_initial_state())
    clock = results[0].estimate.system.clock_hz
    rows = []
    for r in results:
        paper = PAPER_FIG6.get(r.step.name)
        rows.append((r.step.name, f"{r.speedup:.2f}x",
                     f"{paper}x" if paper else "—",
                     f"{r.cycles / clock:.2f} s",
                     "yes" if r.fit.ok else "NO"))
    text = ["## Figure 6 — KWS ladder (Fomu)", ""]
    text.append(_table(("step", "measured", "paper", "latency", "fits"),
                       rows))
    text.append("")
    text.append(
        f"Baseline {results[0].cycles / clock:.0f} s → final "
        f"{results[-1].cycles / clock:.2f} s (paper: ~150 s → <2 s)."
    )
    return "\n".join(text), results


def profile_section(fig4_results):
    estimate = fig4_results[0].estimate
    total = estimate.total_cycles
    shares = estimate.by_opcode(split_conv_1x1=True)
    paper = {"CONV_2D_1x1": "63%", "DEPTHWISE_CONV_2D": "22.5%",
             "CONV_2D_other": "11%"}
    rows = [(k, f"{100 * v / total:.1f}%", paper.get(k, "—"))
            for k, v in sorted(shares.items(), key=lambda kv: -kv[1])[:5]]
    text = ["## MNV2 baseline profile", "",
            f"Total: {total:,.0f} cycles (paper: ~900M).", "",
            _table(("operator type", "measured", "paper"), rows)]
    return "\n".join(text)


def cmsis_section(fig6_results):
    kws = load("dscnn_kws")
    m4 = cmsis_nn_cycles(kws)
    base, final = fig6_results[0], fig6_results[-1]
    rows = [
        ("Fomu baseline", f"{base.cycles:,.0f}", "12 MHz",
         f"{base.cycles / 12e6:.0f} s"),
        ("Fomu + CFU2 final", f"{final.cycles:,.0f}", "12 MHz",
         f"{final.cycles / 12e6:.2f} s"),
        ("Cortex-M4 CMSIS-NN", f"{m4:,.0f}",
         f"{CORTEX_M4_CLOCK_HZ / 1e6:.0f} MHz",
         f"{1000 * m4 / CORTEX_M4_CLOCK_HZ:.1f} ms"),
    ]
    text = ["## KWS vs Cortex-M4 + CMSIS-NN", "",
            _table(("platform", "cycles", "clock", "latency"), rows), "",
            f"Cycle gap closes {base.cycles / m4:,.0f}x → "
            f"{final.cycles / m4:.1f}x ('roughly comparable, normalized "
            "for clock')."]
    return "\n".join(text)


def energy_section(fig6_results):
    model = EnergyModel()
    rows = []
    for r in fig6_results:
        energy = model.estimate(r.estimate, r.fit)
        rows.append((r.step.name, f"{energy.total_uj:,.0f} uJ"))
    text = ["## Energy per inference (future-work extension)", "",
            _table(("step", "energy"), rows)]
    return "\n".join(text)


def generate_report(path=None, include_dse=False, dse_trials=45,
                    dse_workers=1, dse_cache_dir=None):
    """Build the full markdown report; returns the text."""
    sections = ["# CFU Playground reproduction — experiment report", ""]
    fig4_text, fig4_results = fig4_section()
    fig6_text, fig6_results = fig6_section()
    sections += [profile_section(fig4_results), "", fig4_text, "",
                 fig6_text, "", cmsis_section(fig6_results), "",
                 energy_section(fig6_results), ""]
    if include_dse:
        from ..dse import run_fig7, total_space_size
        from .tracing import Tracer

        tracer = Tracer()
        result = run_fig7(trials_per_family=dse_trials, workers=dse_workers,
                          cache_dir=dse_cache_dir, tracer=tracer)
        sections += [
            "## Figure 7 — design-space exploration", "",
            f"Space: {total_space_size():,} points.", "",
            "```", result.summary(), "```", "",
            "```", tracer.summary(), "```", "",
        ]
    text = "\n".join(sections)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return text
