"""Run observability: trial spans, counters, progress events, JSONL export.

Long-running loops (the Fig. 7 DSE engine, the Playground
deploy-profile-optimize cycle) record what happened into a
:class:`Tracer`:

- **spans** — named, attribute-tagged durations on a monotonic clock
  (wall-clock changes cannot corrupt timings);
- **counters** — monotonic named tallies (``cache_hit``, ``cache_miss``,
  ``fit_reject``, ...);
- **events** — point-in-time progress markers (per-family study
  progress, study start/end).

A trace exports as JSON Lines (one record per line, header first) for
machine consumption, and as a short human summary via :meth:`Tracer.summary`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One timed region; ``attrs`` may be filled in while it is open."""

    name: str
    start: float                      # seconds since the tracer's epoch
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)

    def record(self):
        record = {"type": "span", "name": self.name,
                  "start": round(self.start, 9),
                  "duration": round(self.duration, 9)}
        record.update(self.attrs)
        return record


class Tracer:
    """Collects spans, counters, and events for one run.

    ``clock`` is injectable for tests; it must be monotonic.  All
    recorded times are relative to the tracer's construction instant.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._epoch = clock()
        self.spans = []
        self.events = []
        self.counters = {}
        self._records = []            # spans + events in completion order

    # --- recording --------------------------------------------------------------
    def now(self):
        """Seconds since the tracer's epoch (monotonic)."""
        return self._clock() - self._epoch

    @contextmanager
    def span(self, name, **attrs):
        """Time a region: ``with tracer.span("trial", family=f) as s: ...``.

        The yielded :class:`Span` accepts late attributes
        (``s.attrs["cache_hit"] = True``) until the block exits.
        """
        span = Span(name=name, start=self.now(), attrs=dict(attrs))
        try:
            yield span
        finally:
            span.duration = self.now() - span.start
            self._finish(span)

    def record_span(self, name, duration, **attrs):
        """Record an externally-timed span (e.g. measured in a worker
        process) as ending now.

        A worker-measured duration can exceed this tracer's lifetime
        (the work started before the tracer's epoch).  The start is
        floored at the epoch, but the true duration is preserved and the
        record is marked ``clamped`` so consumers can tell the start
        time is approximate rather than silently mis-dated.
        """
        start = self.now() - duration
        span = Span(name=name, start=max(0.0, start),
                    duration=duration, attrs=dict(attrs))
        if start < 0.0:
            span.attrs["clamped"] = True
        self._finish(span)
        return span

    def _finish(self, span):
        self.spans.append(span)
        self._records.append(span.record())

    def count(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount
        return self.counters[name]

    def event(self, name, **attrs):
        record = {"type": "event", "name": name, "time": round(self.now(), 9)}
        record.update(attrs)
        self.events.append(record)
        self._records.append(record)
        return record

    # --- export -----------------------------------------------------------------
    def header(self):
        return {"type": "trace", "schema": TRACE_SCHEMA_VERSION,
                "spans": len(self.spans), "events": len(self.events),
                "counters": dict(sorted(self.counters.items()))}

    def records(self):
        """Header + every span/event record, in completion order."""
        return [self.header()] + list(self._records)

    def export_jsonl(self, path):
        """Write the trace as JSON Lines; returns the record count."""
        records = self.records()
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    # --- human summary ----------------------------------------------------------
    def summary(self):
        hits = self.counters.get("cache_hit", 0)
        misses = self.counters.get("cache_miss", 0)
        lookups = hits + misses
        rate = 100.0 * hits / lookups if lookups else 0.0
        lines = [
            f"trace: {len(self.spans)} spans, {len(self.events)} events",
            f"cache: {hits} hits / {misses} misses "
            f"({rate:.1f}% hit rate)",
            f"fit rejects: {self.counters.get('fit_reject', 0)}",
        ]
        for name in sorted(self.counters):
            if name not in ("cache_hit", "cache_miss", "fit_reject"):
                lines.append(f"{name}: {self.counters[name]}")
        busy = sum(s.duration for s in self.spans)
        lines.append(f"span time: {busy:.3f}s over {self.now():.3f}s elapsed")
        return "\n".join(lines)
