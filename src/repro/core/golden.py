"""Model-level golden testing: optimized kernels vs reference kernels.

Section II-E: "full-inference golden tests, with set inputs and expected
outputs for each provided model."  Because every optimized variant's
``compute`` must be bit-exact with the reference kernel, a golden run
compares entire inference outputs element for element.
"""

from __future__ import annotations

import numpy as np

from ..tflm.interpreter import Interpreter, KernelRegistry, reference_registry


def variant_registry(variants, model):
    """A kernel registry that dispatches each op to its selected variant."""
    reference = reference_registry()

    def make_kernel(opcode):
        def kernel(op, inputs, mdl):
            variant = variants.select(op, mdl)
            if variant is not None:
                return variant.compute(op, inputs, mdl)
            return reference.lookup(opcode)(op, inputs, mdl)
        return kernel

    return KernelRegistry({
        opcode: make_kernel(opcode)
        for opcode in {op.opcode for op in model.operators}
    })


def variant_interpreter(model, variants):
    return Interpreter(model, registry=variant_registry(variants, model))


def golden_input(model, seed=0):
    """The deterministic 'set input' for a model's golden test."""
    rng = np.random.default_rng(seed ^ 0xC0FFEE)
    tensor = model.input
    return rng.integers(-128, 128, size=tensor.shape).astype(np.int8)


def run_golden_inference(model, variants, input_array=None, seed=0):
    """Compare optimized-vs-reference outputs; raises on mismatch."""
    if input_array is None:
        input_array = golden_input(model, seed)
    expected = Interpreter(model).invoke(input_array)
    actual = variant_interpreter(model, variants).invoke(input_array)
    if not np.array_equal(expected, actual):
        bad = int(np.sum(expected != actual))
        raise AssertionError(
            f"golden mismatch on {model.name}: {bad} of {expected.size} "
            f"output elements differ"
        )
    return expected


def golden_checksum(model, seed=0):
    """A stable scalar fingerprint of a model's golden output."""
    output = Interpreter(model).invoke(golden_input(model, seed))
    return int(np.int64(7919) * np.sum(output.astype(np.int64) ** 2)
               % np.int64(2**31 - 1))
