"""Core API: the Playground (deploy-profile-optimize), ladders, golden tests."""

from .golden import (
    golden_checksum,
    golden_input,
    run_golden_inference,
    variant_interpreter,
    variant_registry,
)
from .ladders import (
    FOMU_BASELINE_CPU,
    DeploymentState,
    LadderResult,
    LadderStep,
    kws_initial_state,
    kws_ladder,
    mnv2_1x1_filter,
    mnv2_initial_state,
    mnv2_ladder,
    run_ladder,
)
from .menu import Menu, UartConsole, build_firmware_menu
from .metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from .playground import BuildReport, Playground, PlaygroundError
from .reporting import generate_report
from .project import PROJECTS, BuildArtifacts, Project, ProjectSpec, list_projects, load_project
from .simprofile import ProfileDriftError, SimulatedProfile, simulate_profile
from .tracing import TRACE_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "BuildArtifacts", "BuildReport", "METRICS_SCHEMA_VERSION", "Menu",
    "MetricsRegistry", "PROJECTS", "ProfileDriftError", "Project",
    "ProjectSpec", "SimulatedProfile", "Span", "TRACE_SCHEMA_VERSION",
    "Tracer", "UartConsole", "build_firmware_menu", "list_projects",
    "load_project", "generate_report", "DeploymentState", "FOMU_BASELINE_CPU", "LadderResult",
    "LadderStep", "Playground", "PlaygroundError", "golden_checksum",
    "golden_input", "kws_initial_state", "kws_ladder", "mnv2_1x1_filter",
    "mnv2_initial_state", "mnv2_ladder", "run_golden_inference",
    "run_ladder", "simulate_profile", "variant_interpreter",
    "variant_registry",
]
