"""The emulation session fleet: warm machines behind a wire API.

Interactive TinyML bring-up (Section II-E) is a loop — load firmware,
run, inspect, tweak, run again — and the expensive parts of each lap
are *setup*: building the SoC, decoding firmware, promoting hot blocks
to tier-2 translated code, compiling the CFU's RTL.  This module keeps
all of that warm across laps:

- **Sessions** — each session is a live :class:`~repro.emu.Emulator`
  (board + CPU + optional CFU) that persists between requests, so the
  decode cache, translated blocks, and compiled RTL stay hot.

- **Copy-on-write snapshots** — ``POST .../snapshot`` captures the
  whole system in O(pages-later-touched) via the machine's COW page
  protocol; ``POST .../restore`` rewinds to any live snapshot without
  losing a single cached decode or translated block for untouched
  pages.

- **Shared persistent compile cache** — every session binds tier-2
  blocks and compiled RTL modules from one process-wide
  :class:`~repro.core.codecache.CodeCache`, so a firmware compiles
  once, ever, no matter how many sessions (or processes, when the
  cache is directory-backed) run it.

- **LRU fleet management** — the manager caps live sessions and evicts
  the least-recently-used one on overflow, bounding host memory while
  keeping the hottest machines resident.

The HTTP layer mirrors :mod:`repro.dse.service`: a dependency-free
asyncio HTTP/1.1 server with synchronous handlers, so every state
transition is atomic with respect to the wire.
"""

from __future__ import annotations

import asyncio
import http.client
import itertools
import json
import threading
import time

from ..core.metrics import MetricsRegistry
# The wire plumbing is shared with the DSE study service — both servers
# speak the same minimal JSON-over-HTTP/1.1 dialect.
from ..dse.service import _json_bytes, _read_request
from .renode import Emulator, _resolve_compile_cache

SESSIONS_SCHEMA_VERSION = 1

#: Live sessions kept resident before LRU eviction kicks in.
DEFAULT_MAX_SESSIONS = 32

#: Histogram buckets for per-request step/run wall seconds.
STEP_SECONDS_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
                        0.1, 0.5, 1.0, 5.0)


class SessionError(Exception):
    """A request the session server refuses; carries the HTTP status."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


def _build_cfu(name, impl):
    """A CFU instance from its wire spec (library name + impl flavor).

    ``impl`` picks the realisation: ``"model"`` for the software
    emulation, ``"rtl"`` for cycle-accurate gateware (the Emulator
    wraps bare :class:`~repro.cfu.rtl.RtlCfu` instances itself).
    """
    if name in (None, "", "none"):
        return None
    from ..accel import LIBRARY, KwsCfu, KwsCfu2Rtl

    if impl not in ("model", "rtl"):
        raise SessionError(f"unknown cfu impl {impl!r} "
                           f"(expected 'model' or 'rtl')")
    if name in LIBRARY:
        model_cls, rtl_cls, _opcodes = LIBRARY[name]
        return rtl_cls() if impl == "rtl" else model_cls()
    if name == "kws":
        return KwsCfu2Rtl() if impl == "rtl" else KwsCfu()
    from ..accel import LIBRARY as lib
    known = sorted(lib) + ["kws", "none"]
    raise SessionError(f"unknown cfu {name!r} "
                       f"(expected one of {', '.join(known)})")


def _build_emulator(spec, compile_cache):
    from ..boards import get_board
    from ..soc.soc import Soc

    try:
        board = get_board(spec.get("board", "arty_a7_35t"))
    except KeyError as error:
        raise SessionError(str(error)) from None
    cfu = _build_cfu(spec.get("cfu"), spec.get("cfu_impl", "model"))
    return Emulator(
        Soc(board), cfu=cfu,
        with_timing=bool(spec.get("with_timing", True)),
        rtl_backend=spec.get("rtl_backend", "auto"),
        sim_backend=spec.get("sim_backend", "auto"),
        compile_cache=compile_cache,
    )


class Session:
    """One warm emulator plus its named snapshots and loaded symbols."""

    def __init__(self, manager, session_id, spec):
        self.manager = manager
        self.session_id = session_id
        self.spec = dict(spec)
        self.emulator = _build_emulator(self.spec, manager.compile_cache)
        self.symbols = {}
        self.entry_pc = None
        self.snapshots = {}           # snapshot_id -> emulator snapshot
        self._snap_ids = itertools.count(1)
        self.created = time.monotonic()
        self.runs = 0
        self.instructions_run = 0

    # --- operations ---------------------------------------------------------------
    def load(self, payload):
        """Load firmware into the (warm) machine.

        ``assembly`` is assembled in place; ``binary_hex`` loads raw
        bytes.  Either way only the rewritten pages are invalidated, so
        translated blocks for untouched pages survive the reload.
        """
        region = str(payload.get("region", "sram"))
        offset = int(payload.get("offset", 0))
        try:
            if "assembly" in payload:
                self.symbols = self.emulator.load_assembly(
                    str(payload["assembly"]), region=region, offset=offset)
            elif "binary_hex" in payload:
                blob = bytes.fromhex(str(payload["binary_hex"]))
                self.emulator.load_binary(blob, region=region, offset=offset)
                self.symbols = {}
            else:
                raise SessionError(
                    "load needs 'assembly' or 'binary_hex'")
        except SessionError:
            raise
        except (KeyError, ValueError) as error:
            raise SessionError(f"load failed: {error}") from None
        machine = self.emulator.machine
        machine.halted = False
        machine.exit_code = None
        self.entry_pc = machine.pc
        return {"pc": machine.pc,
                "symbols": {name: addr for name, addr
                            in sorted(self.symbols.items())}}

    def run(self, payload):
        """Execute up to ``max_instructions`` from the current state."""
        budget = int(payload.get("max_instructions", 1_000_000))
        if budget < 1:
            raise SessionError(f"max_instructions must be >= 1, got {budget}")
        backend = payload.get("backend")
        machine = self.emulator.machine
        before = machine.instret
        started = time.perf_counter()
        try:
            exit_code = self.emulator.run(budget, backend=backend)
        except RuntimeError as error:
            # budget exhaustion is a normal partial step, not a fault
            if "instruction budget exhausted" not in str(error):
                raise SessionError(f"run failed: {error!r}",
                                   status=500) from None
            exit_code = None
        except Exception as error:
            raise SessionError(f"run failed: {error!r}", status=500) from None
        elapsed = time.perf_counter() - started
        executed = machine.instret - before
        self.runs += 1
        self.instructions_run += executed
        self.manager.observe_run(elapsed)
        return {
            "exit_code": exit_code,
            "halted": machine.halted,
            "instructions": executed,
            "instret": machine.instret,
            "cycles": machine.cycles,
            "pc": machine.pc,
            "seconds": elapsed,
        }

    def snapshot(self):
        snapshot_id = f"snap-{next(self._snap_ids)}"
        started = time.perf_counter()
        self.snapshots[snapshot_id] = self.emulator.snapshot()
        elapsed = time.perf_counter() - started
        self.manager.metrics.counter("session_snapshots").inc()
        return {"snapshot_id": snapshot_id, "seconds": elapsed}

    def restore(self, payload):
        snapshot_id = str(payload.get("snapshot_id", ""))
        snap = self.snapshots.get(snapshot_id)
        if snap is None:
            raise SessionError(
                f"no snapshot {snapshot_id!r} in session "
                f"{self.session_id}", status=404)
        started = time.perf_counter()
        pages = self.emulator.restore(snap)
        elapsed = time.perf_counter() - started
        self.manager.metrics.counter("session_restores").inc()
        return {"snapshot_id": snapshot_id, "pages_restored": pages,
                "seconds": elapsed}

    def discard(self, payload):
        snapshot_id = str(payload.get("snapshot_id", ""))
        snap = self.snapshots.pop(snapshot_id, None)
        if snap is None:
            raise SessionError(
                f"no snapshot {snapshot_id!r} in session "
                f"{self.session_id}", status=404)
        self.emulator.discard_snapshot(snap)
        return {"snapshot_id": snapshot_id, "discarded": True}

    def profile(self, payload):
        """Run the loaded program under the cycle profiler."""
        if not self.symbols:
            raise SessionError(
                "profile needs assembly-loaded firmware (no symbol table)")
        budget = int(payload.get("max_instructions", 1_000_000))
        backend = payload.get("backend")
        machine = self.emulator.machine
        # Profile the loaded program from its entry point, not from
        # wherever the last run left the pc (that would measure the
        # final ecall and nothing else).
        machine.halted = False
        machine.pc = self.entry_pc
        try:
            profile = self.emulator.profile(self.symbols, budget,
                                            backend=backend)
        except Exception as error:
            raise SessionError(f"profile failed: {error!r}",
                               status=500) from None
        return {
            "total_cycles": profile.total_cycles,
            "truncated": profile.truncated,
            "instruction_mix": dict(profile.instruction_mix),
            "entries": [
                {"name": entry.name, "cycles": entry.cycles,
                 "instructions": entry.instructions}
                for entry in profile.top(len(profile.entries))
            ],
        }

    # --- wire form ----------------------------------------------------------------
    def status(self):
        machine = self.emulator.machine
        cfu = self.emulator.cfu
        return {
            "session_id": self.session_id,
            "board": self.spec.get("board", "arty_a7_35t"),
            "cfu": self.spec.get("cfu") or "none",
            "cfu_name": getattr(cfu, "name", "none") if cfu else "none",
            "sim_backend": self.emulator.sim_backend,
            "pc": machine.pc,
            "instret": machine.instret,
            "cycles": machine.cycles,
            "halted": machine.halted,
            "exit_code": machine.exit_code,
            "runs": self.runs,
            "instructions_run": self.instructions_run,
            "snapshots": sorted(self.snapshots),
            "block_cache_entries": machine.block_cache_entries,
            "block_cache_loads": machine.block_cache_loads,
            "uart": self.emulator.uart_output,
        }


class SessionManager:
    """The fleet: many live sessions, one compile cache, LRU-bounded.

    ``compile_cache`` follows the :class:`Emulator` convention —
    ``True`` for the process-wide default cache, a directory path for a
    dedicated one, ``None`` to disable persistent compile reuse.
    """

    def __init__(self, max_sessions=DEFAULT_MAX_SESSIONS, compile_cache=True,
                 metrics=None):
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self.compile_cache = _resolve_compile_cache(compile_cache)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sessions = {}            # insertion-ordered: LRU front-to-back
        self._ids = itertools.count(1)
        # ``sessions`` is reordered on every get() (LRU touch), so the
        # creation sequence is tracked separately for listings.
        self._created_seq = itertools.count()
        self._created = {}            # session_id -> creation sequence
        self._export_gauges()

    # --- lifecycle ----------------------------------------------------------------
    def create(self, spec):
        session_id = str(spec.get("session_id") or
                         f"session-{next(self._ids)}")
        if session_id in self.sessions:
            raise SessionError(f"session {session_id} already exists",
                               status=409)
        session = Session(self, session_id, spec)
        self.sessions[session_id] = session
        self._created[session_id] = next(self._created_seq)
        self.metrics.counter("sessions_created").inc()
        while len(self.sessions) > self.max_sessions:
            evicted = next(iter(self.sessions))
            del self.sessions[evicted]
            del self._created[evicted]
            self.metrics.counter("sessions_evicted").inc()
        self._export_gauges()
        return session

    def get(self, session_id):
        try:
            session = self.sessions.pop(session_id)
        except KeyError:
            raise SessionError(f"no session {session_id}",
                               status=404) from None
        self.sessions[session_id] = session   # touch: move to LRU back
        return session

    def delete(self, session_id):
        try:
            del self.sessions[session_id]
        except KeyError:
            raise SessionError(f"no session {session_id}",
                               status=404) from None
        del self._created[session_id]
        self.metrics.counter("sessions_deleted").inc()
        self._export_gauges()
        return {"session_id": session_id, "deleted": True}

    def list_statuses(self):
        # Creation order, not lexicographic: "session-10" must list
        # after "session-2", and LRU touches must not reshuffle it.
        ordered = sorted(self.sessions, key=self._created.__getitem__)
        return [self.sessions[sid].status() for sid in ordered]

    # --- observability ------------------------------------------------------------
    def observe_run(self, seconds):
        self.metrics.counter("session_runs").inc()
        self.metrics.histogram("session_run_seconds",
                               buckets=STEP_SECONDS_BUCKETS).observe(seconds)

    def _export_gauges(self):
        self.metrics.gauge("sessions_active").set(len(self.sessions))

    def snapshot_metrics(self):
        """The registry snapshot, with live compile-cache stats folded
        in as gauges (the cache is shared, so these are fleet-wide)."""
        if self.compile_cache is not None:
            stats = getattr(self.compile_cache, "stats", None)
            if stats is not None:
                for name, value in stats.as_dict().items():
                    self.metrics.gauge(f"codecache_{name}").set(value)
        return self.metrics.snapshot()


# --------------------------------------------------------------------------------
# The HTTP layer
# --------------------------------------------------------------------------------


class SessionHttpServer:
    """Serves a :class:`SessionManager` over HTTP/1.1."""

    def __init__(self, manager, host="127.0.0.1", port=0):
        self.manager = manager
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def wait_closed(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                await self._handle_request(method, target, body, writer)
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown: close the socket and finish quietly
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, method, target, body, writer):
        path, _, _query = target.partition("?")
        parts = [p for p in path.split("/") if p]
        route, handler = self._route(method, parts)
        self.manager.metrics.counter("session_http_requests",
                                     route=route).inc()
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            writer.write(_json_bytes(400, {"error": "malformed JSON body"}))
            await writer.drain()
            return
        try:
            status, result = handler(parts, payload)
        except SessionError as error:
            status, result = error.status, {"error": str(error)}
        except Exception as error:  # never kill the connection loop
            status, result = 500, {"error": f"internal error: {error!r}"}
        writer.write(_json_bytes(status, result))
        await writer.drain()

    def _route(self, method, parts):
        manager = self.manager
        if method == "GET" and parts == ["healthz"]:
            return "healthz", lambda p, b: (200, {
                "ok": True, "schema": SESSIONS_SCHEMA_VERSION})
        if method == "GET" and parts == ["metrics"]:
            return "metrics", lambda p, b: (200, manager.snapshot_metrics())
        if method == "GET" and parts == ["sessions"]:
            return "list", lambda p, b: (200, {
                "sessions": manager.list_statuses(),
                "max_sessions": manager.max_sessions})
        if method == "POST" and parts == ["sessions"]:
            return "create", lambda p, b: (200, manager.create(b).status())
        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            tail = parts[2:]
            if method == "GET" and not tail:
                return "status", lambda p, b: (
                    200, manager.get(session_id).status())
            if method == "DELETE" and not tail:
                return "delete", lambda p, b: (
                    200, manager.delete(session_id))
            if method == "POST" and len(tail) == 1:
                verb = tail[0]
                actions = {
                    "load": lambda s, b: s.load(b),
                    "run": lambda s, b: s.run(b),
                    "step": lambda s, b: s.run(b),
                    "snapshot": lambda s, b: s.snapshot(),
                    "restore": lambda s, b: s.restore(b),
                    "discard-snapshot": lambda s, b: s.discard(b),
                    "profile": lambda s, b: s.profile(b),
                }
                if verb in actions:
                    action = actions[verb]
                    return verb, lambda p, b: (
                        200, action(manager.get(session_id), b))
        return "unknown", lambda p, b: (
            404, {"error": f"no route {method} /{'/'.join(parts)}"})


def serve(manager, host="127.0.0.1", port=8744):
    """Blocking entry point (``repro sessions serve``)."""
    async def _main():
        server = await SessionHttpServer(manager, host, port).start()
        await server._server.serve_forever()
    asyncio.run(_main())


class SessionServerThread:
    """A served :class:`SessionManager` on a background thread (tests
    and the benchmark harness)."""

    def __init__(self, manager, host="127.0.0.1", port=0):
        self.manager = manager
        self._http = SessionHttpServer(manager, host, port)
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("session server thread failed to start")

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self._http.start())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._http.wait_closed())
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            loop.close()

    @property
    def url(self):
        return self._http.url

    def stop(self):
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False


class SessionClientError(RuntimeError):
    """A 4xx/5xx from the session server."""

    def __init__(self, status, payload):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class SessionClient:
    """Minimal JSON-over-HTTP client for the session server."""

    def __init__(self, base_url, timeout=30.0):
        import urllib.parse

        parsed = urllib.parse.urlsplit(base_url)
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn = None

    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def request(self, method, path, payload=None):
        body = json.dumps(payload).encode() if payload is not None else b""
        try:
            conn = self._connection()
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException):
            self.close()
            raise
        result = json.loads(data.decode("utf-8")) if data else {}
        if status >= 400:
            raise SessionClientError(status, result)
        return result

    def close(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    # --- API surface --------------------------------------------------------------
    def healthz(self):
        return self.request("GET", "/healthz")

    def metrics(self):
        return self.request("GET", "/metrics")

    def create(self, spec=None):
        return self.request("POST", "/sessions", spec or {})

    def list(self):
        return self.request("GET", "/sessions")

    def status(self, session_id):
        return self.request("GET", f"/sessions/{session_id}")

    def delete(self, session_id):
        return self.request("DELETE", f"/sessions/{session_id}")

    def load(self, session_id, **payload):
        return self.request("POST", f"/sessions/{session_id}/load", payload)

    def run(self, session_id, **payload):
        return self.request("POST", f"/sessions/{session_id}/run", payload)

    def step(self, session_id, **payload):
        return self.request("POST", f"/sessions/{session_id}/step", payload)

    def snapshot(self, session_id):
        return self.request("POST", f"/sessions/{session_id}/snapshot", {})

    def restore(self, session_id, snapshot_id):
        return self.request("POST", f"/sessions/{session_id}/restore",
                            {"snapshot_id": snapshot_id})

    def discard_snapshot(self, session_id, snapshot_id):
        return self.request("POST",
                            f"/sessions/{session_id}/discard-snapshot",
                            {"snapshot_id": snapshot_id})

    def profile(self, session_id, **payload):
        return self.request("POST", f"/sessions/{session_id}/profile",
                            payload)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
