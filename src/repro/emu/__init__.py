"""System emulation: Renode-style ISA+RTL co-simulation and VCD capture."""

from .renode import Emulator
from .sessions import (
    SessionClient,
    SessionManager,
    SessionServerThread,
)
from .waveform import VcdWriter, capture_cfu_waveform

__all__ = [
    "Emulator", "SessionClient", "SessionManager", "SessionServerThread",
    "VcdWriter", "capture_cfu_waveform",
]
