"""System emulation: Renode-style ISA+RTL co-simulation and VCD capture."""

from .renode import Emulator
from .waveform import VcdWriter, capture_cfu_waveform

__all__ = ["Emulator", "VcdWriter", "capture_cfu_waveform"]
