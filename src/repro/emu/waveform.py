"""VCD waveform capture from the RTL simulator.

"The Renode emulator also allows us to capture the waveforms from the
CFU operation, which is extremely useful for tracking down errors in the
hardware design" (Section II-E).  :class:`VcdWriter` attaches to a
:class:`~repro.rtl.sim.Simulator` as a tracer and emits a standard
Value Change Dump viewable in GTKWave.
"""

from __future__ import annotations

import io

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


class VcdWriter:
    """Streams signal changes to a file-like object in VCD format."""

    def __init__(self, signals, stream=None, timescale="1ns", module="top"):
        self.signals = list(signals)
        self.stream = stream if stream is not None else io.StringIO()
        self._ids = {}
        self._last = {}
        self._header_done = False
        self.timescale = timescale
        self.module = module
        for index, signal in enumerate(self.signals):
            self._ids[signal] = self._make_id(index)

    @staticmethod
    def _make_id(index):
        base = len(_ID_CHARS)
        chars = []
        while True:
            chars.append(_ID_CHARS[index % base])
            index //= base
            if not index:
                break
        return "".join(chars)

    def _write_header(self):
        w = self.stream.write
        w(f"$timescale {self.timescale} $end\n")
        w(f"$scope module {self.module} $end\n")
        for signal in self.signals:
            w(f"$var wire {signal.width} {self._ids[signal]} {signal.name} $end\n")
        w("$upscope $end\n$enddefinitions $end\n")
        self._header_done = True

    def _emit(self, signal, value):
        ident = self._ids[signal]
        if signal.width == 1:
            self.stream.write(f"{value & 1}{ident}\n")
        else:
            self.stream.write(f"b{value:b} {ident}\n")

    def __call__(self, time, simulator):
        """Simulator tracer hook: record changed signals at ``time``."""
        if not self._header_done:
            self._write_header()
            self.stream.write("#0\n")
            for signal in self.signals:
                value = simulator.peek(signal)
                self._last[signal] = value
                self._emit(signal, value)
        changed = [
            (signal, simulator.peek(signal)) for signal in self.signals
            if simulator.peek(signal) != self._last.get(signal)
        ]
        if not changed:
            return
        self.stream.write(f"#{time}\n")
        for signal, value in changed:
            self._last[signal] = value
            self._emit(signal, value)

    def text(self):
        if not self._header_done:
            self._write_header()
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise TypeError("text() only available for in-memory streams")


def capture_cfu_waveform(rtl_cfu, operations, extra_signals=(),
                         backend="auto"):
    """Run an op sequence on a CFU and return the VCD text."""
    from ..cfu.rtl import RtlCfuAdapter

    adapter = RtlCfuAdapter(rtl_cfu, backend=backend)
    signals = rtl_cfu.ports.all() + list(extra_signals)
    writer = VcdWriter(signals, module=rtl_cfu.name.replace("-", "_"))
    adapter.sim.add_tracer(writer)
    results = [adapter.execute(*op) for op in operations]
    return writer.text(), results
