"""Renode-style whole-system emulation.

"Renode performs ISA simulation of the CPU, combined with cycle-accurate
Verilog simulation of the CFU.  It also simulates the RAM, ROM, and
UART" (Section II-E).  :class:`Emulator` assembles exactly that: the
RV32IM machine executing against a SoC bus (RAM regions + CSR-mapped
peripherals, UART included) with the CFU realized either as gateware in
the cycle-accurate RTL simulator or as the software emulation model —
the swap the paper uses for debugging.
"""

from __future__ import annotations

import copy
import time

from ..cfu.interface import CfuModel, MeteredCfu
from ..cfu.rtl import RtlCfu, RtlCfuAdapter
from ..cpu.assembler import assemble
from ..cpu.machine import Machine
from ..cpu.timing import VexTiming
from ..soc.soc import Soc


class Emulator:
    """A SoC + CPU + optional CFU, ready to run programs.

    ``compile_cache`` accepts a :class:`~repro.core.codecache.CodeCache`
    (or a directory path, or ``True`` for the process-wide default): the
    machine then binds tier-2 translated blocks from cached generated
    source instead of re-running the code generator — across processes
    when the cache is directory-backed.
    """

    def __init__(self, soc, cfu=None, with_timing=True, tracer=None,
                 rtl_backend="auto", sim_backend="auto", compile_cache=None):
        if not isinstance(soc, Soc):
            raise TypeError("Emulator requires a Soc")
        self.soc = soc
        self.bus = soc.bus()
        self.rtl_backend = rtl_backend
        #: default ISA execution tier for run()/profile(); see
        #: :data:`repro.cpu.machine.SIM_BACKENDS`.
        self.sim_backend = sim_backend
        if isinstance(cfu, RtlCfu):
            # cycle-accurate gateware simulation
            cfu = RtlCfuAdapter(cfu, backend=rtl_backend)
        if cfu is not None and not isinstance(
                cfu, (CfuModel, RtlCfuAdapter, MeteredCfu)):
            raise TypeError("cfu must be a CfuModel or RtlCfu(-Adapter)")
        self.cfu = cfu
        self.tracer = tracer
        timing = (VexTiming(soc.cpu_config, soc.memory_map)
                  if with_timing else None)
        self.machine = Machine(memory=self.bus, cfu=cfu, timing=timing)
        self.machine.compile_cache = _resolve_compile_cache(compile_cache)

    # --- program loading -------------------------------------------------------
    def load_binary(self, blob, region="sram", offset=0):
        base = self.soc.memory_map.get(region).base + offset
        self.bus.load_bytes(base, blob)
        # Loading bypasses the store path, so drop stale decodes — but
        # only for the pages actually rewritten: blocks translated for
        # untouched pages survive a reload.
        self.machine.invalidate_pages(base, len(blob))
        self.machine.pc = base
        return base

    def load_assembly(self, source, region="sram", offset=0):
        base = self.soc.memory_map.get(region).base + offset
        code, symbols = assemble(source, origin=base)
        self.bus.load_bytes(base, code)
        self.machine.invalidate_pages(base, len(code))
        self.machine.pc = base
        return symbols

    # --- warm state -------------------------------------------------------------
    def snapshot(self):
        """Snapshot the whole system: machine (COW memory, registers,
        timing caches, CFU) plus peripheral/CSR state and bus traffic
        counters.  O(pages later touched), not O(memory)."""
        return {
            "machine": self.machine.snapshot(),
            "csr": {register.name: register.value
                    for register in self.soc.csr_bank.registers},
            "peripherals": {
                peripheral.name: copy.deepcopy(peripheral.__dict__)
                for peripheral in [self.soc.spiflash] + self.soc.peripherals},
            "traffic": (None if self.bus._traffic is None
                        else {key: list(value)
                              for key, value in self.bus._traffic.items()}),
        }

    def restore(self, snap):
        """Restore a :meth:`snapshot`.  Returns the number of memory
        pages rewritten."""
        restored = self.machine.restore(snap["machine"])
        for register in self.soc.csr_bank.registers:
            if register.name in snap["csr"]:
                register.value = snap["csr"][register.name]
        saved_peripherals = snap["peripherals"]
        for peripheral in [self.soc.spiflash] + self.soc.peripherals:
            state = saved_peripherals.get(peripheral.name)
            if state is not None:
                peripheral.__dict__.update(copy.deepcopy(state))
        if snap["traffic"] is not None and self.bus._traffic is not None:
            self.bus._traffic.clear()
            self.bus._traffic.update(
                {key: list(value) for key, value in snap["traffic"].items()})
        return restored

    def discard_snapshot(self, snap):
        """Stop accumulating undo records for a snapshot."""
        self.machine.discard_snapshot(snap["machine"])

    # --- execution ---------------------------------------------------------------
    def _resolve_backend(self, fast, backend):
        """None resolves to the emulator's default tier (``sim_backend``)
        when ``fast``, the reference interpreter otherwise — so legacy
        ``fast=False`` callers still get the step loop."""
        if backend is not None:
            return backend
        return self.sim_backend if fast else "step"

    def run(self, max_instructions=5_000_000, fast=True, backend=None):
        machine = self.machine
        backend = self._resolve_backend(fast, backend)
        if self.tracer is None:
            return machine.run(max_instructions, backend=backend)
        instret0 = machine.instret
        invalidations0 = machine.invalidation_count
        promotions0 = machine.block_promotions
        with self.tracer.span("sim_run", backend=backend) as span:
            start = time.perf_counter()
            try:
                return machine.run(max_instructions, backend=backend)
            finally:
                elapsed = time.perf_counter() - start
                instructions = machine.instret - instret0
                span.attrs["instructions"] = instructions
                span.attrs["cycles"] = machine.cycles
                span.attrs["instructions_per_second"] = (
                    round(instructions / elapsed) if elapsed > 0 else None)
                span.attrs["decode_cache_entries"] = (
                    machine.decode_cache_entries)
                span.attrs["cache_invalidations"] = (
                    machine.invalidation_count - invalidations0)
                span.attrs["block_cache_entries"] = (
                    machine.block_cache_entries)
                span.attrs["block_promotions"] = (
                    machine.block_promotions - promotions0)
                self.tracer.count("sim_instructions", instructions)

    def profile(self, symbols, max_instructions=5_000_000, fast=True,
                backend=None):
        """Run the loaded program under the cycle profiler.

        ``symbols`` is the name->address table :meth:`load_assembly`
        returned.  Returns the :class:`~repro.cpu.profiler.Profile`;
        records a ``sim_profile`` span when a tracer is attached.
        """
        from ..cpu.profiler import MachineProfiler

        backend = self._resolve_backend(fast, backend)
        profiler = MachineProfiler(self.machine, symbols)
        if self.tracer is None:
            return profiler.run(max_instructions, backend=backend)
        with self.tracer.span("sim_profile", backend=backend) as span:
            profile = profiler.run(max_instructions, backend=backend)
            span.attrs["cycles"] = profile.total_cycles
            span.attrs["symbols"] = len(profile.entries)
            span.attrs["truncated"] = profile.truncated
            return profile

    def export_metrics(self, registry, **labels):
        """Feed machine, bus, and CFU counters into a
        :class:`~repro.core.metrics.MetricsRegistry` in one call."""
        self.machine.export_metrics(registry, **labels)
        self.bus.export_metrics(registry, **labels)
        if isinstance(self.cfu, MeteredCfu):
            self.cfu.export_metrics(registry, **labels)
        return registry

    @property
    def cycles(self):
        return self.machine.cycles

    @property
    def uart_output(self):
        return self.soc.peripheral("uart").text()

    def swap_cfu(self, cfu):
        """Swap gateware for software emulation (or vice versa) in place —
        the Section II-E debugging technique."""
        if isinstance(cfu, RtlCfu):
            cfu = RtlCfuAdapter(cfu, backend=self.rtl_backend)
        self.cfu = cfu
        self.machine.cfu = cfu
        return self


def _resolve_compile_cache(compile_cache):
    """None | True | path | CodeCache -> CodeCache or None."""
    if compile_cache is None or hasattr(compile_cache, "get"):
        return compile_cache
    from ..core.codecache import CodeCache, default_cache

    if compile_cache is True:
        return default_cache()
    return CodeCache(str(compile_cache))


def uart_putc_assembly(csr_address):
    """Assembly snippet: write a0's low byte to the UART TX register."""
    return f"""
        li t5, {csr_address}
        sw a0, 0(t5)
    """
