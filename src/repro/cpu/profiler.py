"""Instruction-level profiler for the ISA machine.

The on-board half of the paper's "Profile" step: attach to a
:class:`~repro.cpu.machine.Machine`, run a program, and get cycle
attribution per symbol (from the assembler's label table) or per address
range — the same view `perf`/gprof would give on the real board via the
mcycle counter.

Two collection paths produce bit-identical attributions:

- ``run(fast=True)`` (default) piggybacks on the decoded-instruction
  fast path: :meth:`Machine._run_fast` charges each dispatch's cycles
  into a per-pc bucket (one dict lookup per instruction), and symbol
  resolution happens once per *static* pc via bisect when the profile
  is finalized.  Profiling cost is a small constant factor over the
  unprofiled fast path (``benchmarks/bench_profile_overhead.py`` holds
  it under 3x).
- ``run(fast=False)`` wraps the reference ``step()`` loop, attributing
  the machine's cycle delta around every single step — the original,
  slow, trivially-correct collector the fast path is verified against.

Exhausting the instruction budget no longer raises: the partial profile
is returned with :attr:`Profile.truncated` set, so a too-short budget
costs a flag check instead of the whole measurement.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from . import isa
from .machine import _specialize, classify_kind


@dataclass
class ProfileEntry:
    name: str
    cycles: int = 0
    instructions: int = 0

    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class Profile:
    entries: dict = field(default_factory=dict)
    total_cycles: int = 0
    #: True when collection stopped on the instruction budget rather
    #: than a halt — the attribution is exact but covers a prefix.
    truncated: bool = False
    #: Executed-instruction counts by class (alu/load/branch/...).
    instruction_mix: dict = field(default_factory=dict)

    def top(self, count=10):
        # Name tie-break: equal-cycle symbols would otherwise rank in
        # dict-insertion (i.e. first-execution) order, making reports
        # and golden text outputs unstable across collection paths.
        ranked = sorted(self.entries.values(),
                        key=lambda e: (-e.cycles, e.name))
        return ranked[:count]

    def summary(self, count=10):
        lines = [f"{'symbol':24s} {'cycles':>12s} {'share':>7s} {'CPI':>6s}"]
        for entry in self.top(count):
            share = (100 * entry.cycles / self.total_cycles
                     if self.total_cycles else 0)
            lines.append(f"{entry.name:24s} {entry.cycles:>12,} "
                         f"{share:>6.1f}% {entry.cpi():>6.2f}")
        if self.truncated:
            lines.append("(truncated: instruction budget exhausted)")
        return "\n".join(lines)

    def folded(self, prefix=""):
        """Flamegraph-compatible folded-stack lines (``symbol cycles``).

        ``prefix`` prepends stack frames (semicolon-separated), letting
        callers nest profiles (e.g. ``"CONV_2D_1x1"`` per workload).
        """
        lines = []
        for entry in self.top(len(self.entries)):
            stack = f"{prefix};{entry.name}" if prefix else entry.name
            lines.append(f"{stack} {entry.cycles}")
        return lines

    def export_folded(self, path, prefix=""):
        """Write folded stacks for ``flamegraph.pl``; returns line count."""
        lines = self.folded(prefix=prefix)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return len(lines)

    def export_metrics(self, registry, **labels):
        """Feed per-symbol cycles and the instruction mix into a
        :class:`~repro.core.metrics.MetricsRegistry`."""
        for entry in self.top(len(self.entries)):
            registry.counter("profile_cycles", symbol=entry.name,
                             **labels).add(int(entry.cycles))
            registry.counter("profile_instructions", symbol=entry.name,
                             **labels).add(int(entry.instructions))
        for kind_class, count in sorted(self.instruction_mix.items()):
            registry.counter("profile_mix", kind=kind_class,
                             **labels).add(int(count))
        return registry

    def __getitem__(self, name):
        return self.entries[name]

    def __contains__(self, name):
        return name in self.entries


class MachineProfiler:
    """Attributes a machine run's cycles to symbols.

    ``symbols`` maps names to start addresses (the assembler returns
    exactly this, in any order); each instruction is attributed to the
    nearest symbol at or below its pc.
    """

    def __init__(self, machine, symbols):
        self.machine = machine
        pairs = sorted((addr, name) for name, addr in symbols.items())
        self._addrs = [addr for addr, _ in pairs]
        self._names = [name for _, name in pairs]
        self.profile = Profile()
        #: pc -> [cycles, instructions]; filled by either collection path.
        self.pc_buckets = {}
        self._original_step = machine.step

    def _symbol_for(self, pc):
        index = bisect_right(self._addrs, pc) - 1
        return self._names[index] if index >= 0 else "<unknown>"

    def bucket_for_pc(self, pc):
        """Slow-path bucket creation: called once per static pc by the
        fast loop (via the decode-cache-style get-or-create pattern)."""
        bucket = [0, 0]
        self.pc_buckets[pc] = bucket
        return bucket

    def run(self, max_instructions=5_000_000, fast=True, backend=None):
        """Run to halt (or budget) and return the :class:`Profile`.

        ``backend`` picks the execution tier exactly as in
        :meth:`Machine.run <repro.cpu.machine.Machine.run>`; None
        resolves from the legacy ``fast`` flag.  Attribution is
        identical across tiers: translated blocks charge cycles to the
        same pc buckets the dispatch loops would.

        A budget exhaustion returns the partial profile with
        ``truncated=True`` instead of discarding it.
        """
        from .machine import SIM_BACKENDS

        if backend is None:
            backend = "auto" if fast else "step"
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown sim backend {backend!r}"
                f" (expected one of {', '.join(SIM_BACKENDS)})")
        machine = self.machine
        machine.last_run_backend = backend
        if backend != "step":
            machine._run_fast(max_instructions, profile=self,
                              translate=backend != "fast")
        else:
            remaining = max_instructions
            buckets = self.pc_buckets
            while not machine.halted and remaining > 0:
                pc = machine.pc
                before = machine.cycles
                self._original_step()
                bucket = buckets.get(pc)
                if bucket is None:
                    bucket = self.bucket_for_pc(pc)
                bucket[0] += machine.cycles - before
                bucket[1] += 1
                remaining -= 1
        return self._finalize()

    def _finalize(self):
        profile = self.profile
        entries = profile.entries
        mix = profile.instruction_mix
        total_cycles = 0
        memory = self.machine.memory
        decode_cache = self.machine._decode_cache
        for pc in sorted(self.pc_buckets):
            cycles, instructions = self.pc_buckets[pc]
            name = self._symbol_for(pc)
            entry = entries.get(name)
            if entry is None:
                entry = entries.setdefault(name, ProfileEntry(name))
            entry.cycles += cycles
            entry.instructions += instructions
            total_cycles += cycles
            kind_class = self._classify(pc, memory, decode_cache)
            mix[kind_class] = mix.get(kind_class, 0) + instructions
        profile.total_cycles += total_cycles
        profile.truncated = not self.machine.halted
        # Buckets are folded in exactly once; a second run() keeps
        # accumulating into fresh buckets.
        self.pc_buckets = {}
        return profile

    @staticmethod
    def _classify(pc, memory, decode_cache):
        op = decode_cache.get(pc)
        if op is None:
            # Invalidated (self-modifying code) or reference-path run:
            # re-decode from current memory; anything unreadable or
            # no-longer-an-instruction counts as unknown.
            try:
                op = _specialize(pc, isa.decode(memory.read32(pc)))
            except Exception:
                return "unknown"
        return classify_kind(op[0])


def profile_assembly(source, timing=None, cfu=None, region_base=0,
                     max_instructions=5_000_000, fast=True, backend=None):
    """Assemble, run, and profile a program in one call."""
    from .machine import Machine

    machine = Machine(cfu=cfu, timing=timing)
    symbols = machine.load_assembly(source, addr=region_base)
    profiler = MachineProfiler(machine, symbols)
    profile = profiler.run(max_instructions, fast=fast, backend=backend)
    return profile, machine
