"""Instruction-level profiler for the ISA machine.

The on-board half of the paper's "Profile" step: attach to a
:class:`~repro.cpu.machine.Machine`, run a program, and get cycle
attribution per symbol (from the assembler's label table) or per address
range — the same view `perf`/gprof would give on the real board via the
mcycle counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProfileEntry:
    name: str
    cycles: int = 0
    instructions: int = 0

    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class Profile:
    entries: dict = field(default_factory=dict)
    total_cycles: int = 0

    def top(self, count=10):
        ranked = sorted(self.entries.values(), key=lambda e: -e.cycles)
        return ranked[:count]

    def summary(self, count=10):
        lines = [f"{'symbol':24s} {'cycles':>12s} {'share':>7s} {'CPI':>6s}"]
        for entry in self.top(count):
            share = (100 * entry.cycles / self.total_cycles
                     if self.total_cycles else 0)
            lines.append(f"{entry.name:24s} {entry.cycles:>12,} "
                         f"{share:>6.1f}% {entry.cpi():>6.2f}")
        return "\n".join(lines)

    def __getitem__(self, name):
        return self.entries[name]


class MachineProfiler:
    """Wraps a machine's step() to attribute cycles to symbols.

    ``symbols`` maps names to start addresses (the assembler returns
    exactly this); each instruction is attributed to the nearest symbol
    at or below its pc.
    """

    def __init__(self, machine, symbols):
        self.machine = machine
        self._sorted = sorted(
            ((addr, name) for name, addr in symbols.items()),
            key=lambda pair: pair[0],
        )
        self.profile = Profile()
        self._original_step = machine.step

    def _symbol_for(self, pc):
        name = "<unknown>"
        for addr, symbol in self._sorted:
            if addr > pc:
                break
            name = symbol
        return name

    def run(self, max_instructions=5_000_000):
        machine = self.machine
        while not machine.halted and max_instructions > 0:
            pc = machine.pc
            before = machine.cycles
            self._original_step()
            spent = machine.cycles - before
            name = self._symbol_for(pc)
            entry = self.profile.entries.setdefault(name, ProfileEntry(name))
            entry.cycles += spent
            entry.instructions += 1
            self.profile.total_cycles += spent
            max_instructions -= 1
        if not machine.halted:
            raise RuntimeError("instruction budget exhausted while profiling")
        return self.profile


def profile_assembly(source, timing=None, cfu=None, region_base=0,
                     max_instructions=5_000_000):
    """Assemble, run, and profile a program in one call."""
    from .machine import Machine

    machine = Machine(cfu=cfu, timing=timing)
    symbols = machine.load_assembly(source, addr=region_base)
    profiler = MachineProfiler(machine, symbols)
    profile = profiler.run(max_instructions)
    return profile, machine
