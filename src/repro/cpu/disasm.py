"""Tiny RV32IM disassembler (debugging aid and test oracle)."""

from __future__ import annotations

from . import isa

_REG = [f"x{i}" for i in range(32)]

_OP_IMM = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}
_OP = {
    (0, 0x00): "add", (0, 0x20): "sub", (1, 0x00): "sll",
    (2, 0x00): "slt", (3, 0x00): "sltu", (4, 0x00): "xor",
    (5, 0x00): "srl", (5, 0x20): "sra", (6, 0x00): "or", (7, 0x00): "and",
    (0, 0x01): "mul", (1, 0x01): "mulh", (2, 0x01): "mulhsu",
    (3, 0x01): "mulhu", (4, 0x01): "div", (5, 0x01): "divu",
    (6, 0x01): "rem", (7, 0x01): "remu",
}
_LOAD = {0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
_STORE = {0: "sb", 1: "sh", 2: "sw"}
_BRANCH = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}


def disassemble(word):
    """Render one instruction word as assembly text."""
    ins = isa.decode(word)
    op = ins.opcode
    rd, rs1, rs2 = _REG[ins.rd], _REG[ins.rs1], _REG[ins.rs2]
    if op == isa.OPCODE_LUI:
        return f"lui {rd}, {ins.imm >> 12 & 0xFFFFF}"
    if op == isa.OPCODE_AUIPC:
        return f"auipc {rd}, {ins.imm >> 12 & 0xFFFFF}"
    if op == isa.OPCODE_JAL:
        return f"jal {rd}, {ins.imm}"
    if op == isa.OPCODE_JALR:
        return f"jalr {rd}, {ins.imm}({rs1})"
    if op == isa.OPCODE_BRANCH:
        name = _BRANCH.get(ins.funct3, "b?")
        return f"{name} {rs1}, {rs2}, {ins.imm}"
    if op == isa.OPCODE_LOAD:
        name = _LOAD.get(ins.funct3, "l?")
        return f"{name} {rd}, {ins.imm}({rs1})"
    if op == isa.OPCODE_STORE:
        name = _STORE.get(ins.funct3, "s?")
        return f"{name} {rs2}, {ins.imm}({rs1})"
    if op == isa.OPCODE_OP_IMM:
        if ins.funct3 == 1:
            return f"slli {rd}, {rs1}, {ins.imm & 0x1F}"
        if ins.funct3 == 5:
            name = "srai" if ins.funct7 & 0x20 else "srli"
            return f"{name} {rd}, {rs1}, {ins.imm & 0x1F}"
        name = _OP_IMM.get(ins.funct3, "?i")
        return f"{name} {rd}, {rs1}, {ins.imm}"
    if op == isa.OPCODE_OP:
        name = _OP.get((ins.funct3, ins.funct7), "?")
        return f"{name} {rd}, {rs1}, {rs2}"
    if op == isa.OPCODE_CUSTOM0:
        # Assembler-compatible form: cfu funct7, funct3, rd, rs1, rs2
        return f"cfu {ins.funct7}, {ins.funct3}, {rd}, {rs1}, {rs2}"
    if op == isa.OPCODE_SYSTEM:
        if ins.raw == 0x00000073:
            return "ecall"
        if ins.raw == 0x00100073:
            return "ebreak"
        return f"csr[{ins.imm & 0xFFF}] {rd}, {rs1}"
    if op == isa.OPCODE_MISC_MEM:
        return "fence"
    return f".word 0x{word:08x}"
