"""Soft-CPU substrate: RV32IM ISA, assembler, machine, VexRiscv model.

- :mod:`repro.cpu.isa` — instruction encoding/decoding, CFU custom-0.
- :mod:`repro.cpu.assembler` — two-pass assembler (GCC stand-in).
- :mod:`repro.cpu.machine` — executable RV32IM machine.
- :mod:`repro.cpu.vexriscv` — configuration space + area model.
- :mod:`repro.cpu.timing` — cycle-cost model for a configuration.
"""

from .assembler import AssemblerError, assemble
from .disasm import disassemble
from .isa import Instruction, decode, encode_cfu, register_number
from .machine import SIM_BACKENDS, Machine, MemoryAccessError, SparseMemory
from .timing import BranchPredictor, VexTiming
from .vexriscv import (
    ARTY_DEFAULT,
    BRANCH_PREDICTORS,
    DIVIDERS,
    FOMU_MINIMAL,
    MULTIPLIERS,
    SHIFTERS,
    VexRiscvConfig,
    cpu_resources,
)

__all__ = [
    "ARTY_DEFAULT",
    "AssemblerError",
    "BRANCH_PREDICTORS",
    "BranchPredictor",
    "DIVIDERS",
    "FOMU_MINIMAL",
    "Instruction",
    "MULTIPLIERS",
    "Machine",
    "MemoryAccessError",
    "SHIFTERS",
    "SIM_BACKENDS",
    "SparseMemory",
    "VexRiscvConfig",
    "VexTiming",
    "assemble",
    "cpu_resources",
    "decode",
    "disassemble",
    "encode_cfu",
    "register_number",
]
