"""Two-pass RV32IM assembler.

Supports the full RV32IM base set, the CFU custom-0 instruction, labels,
``.word``/``.byte``/``.zero`` data directives, and the common pseudo
instructions (``li``, ``la``, ``mv``, ``nop``, ``j``, ``ret``, ``call``,
``not``, ``seqz``, ``snez``, ``beqz``, ``bnez``).

This is the stand-in for the stock RISC-V GCC/binutils toolchain: the
paper's point is that no toolchain modification is needed for CFU
instructions, only a macro that emits the encoded word — which is what
:func:`repro.cpu.isa.encode_cfu` provides here.
"""

from __future__ import annotations

import re

from . import isa
from .isa import register_number as reg

_I_ARITH = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_R_OPS = {
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
    "mul": (0, 0x01), "mulh": (1, 0x01), "mulhsu": (2, 0x01),
    "mulhu": (3, 0x01), "div": (4, 0x01), "divu": (5, 0x01),
    "rem": (6, 0x01), "remu": (7, 0x01),
}
_LOADS = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORES = {"sb": 0, "sh": 1, "sw": 2}
_BRANCHES = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")


class AssemblerError(ValueError):
    pass


def assemble(source, origin=0):
    """Assemble source text; returns ``(code_bytes, symbols)``."""
    items = _parse(source)
    symbols = _layout(items, origin)
    words = bytearray()
    for item in items:
        kind = item[0]
        if kind == "label":
            continue
        if kind == "word":
            value = _resolve(item[1], symbols)
            words += (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif kind == "byte":
            words += bytes([_resolve(item[1], symbols) & 0xFF])
        elif kind == "zero":
            words += bytes(item[1])
        elif kind == "instr":
            addr = item[3]
            for encoded in _encode(item[1], item[2], addr, symbols):
                words += encoded.to_bytes(4, "little")
    return bytes(words), symbols


def _parse(source):
    items = []
    for raw_line in source.splitlines():
        line = raw_line.split("#")[0].split("//")[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            if not re.fullmatch(r"[A-Za-z_.$][\w.$]*", label.strip()):
                break
            items.append(("label", label.strip()))
            line = rest.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        if mnemonic == ".word":
            for operand in operands:
                items.append(("word", operand))
        elif mnemonic == ".byte":
            for operand in operands:
                items.append(("byte", operand))
        elif mnemonic == ".zero":
            items.append(("zero", int(operands[0], 0)))
        elif mnemonic.startswith("."):
            continue  # ignore other directives (.text, .align 4, ...)
        else:
            items.append(["instr", mnemonic, operands, None])
    return items


def _instr_words(mnemonic):
    return 2 if mnemonic in ("li", "la", "call") else 1


def _layout(items, origin):
    symbols = {}
    addr = origin
    for item in items:
        kind = item[0]
        if kind == "label":
            symbols[item[1]] = addr
        elif kind == "word":
            addr += 4
        elif kind == "byte":
            addr += 1
        elif kind == "zero":
            addr += item[1]
        else:
            item[3] = addr
            addr += 4 * _instr_words(item[1])
    return symbols


def _resolve(token, symbols):
    token = token.strip()
    if token in symbols:
        return symbols[token]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"unknown symbol or literal {token!r}") from exc


def _mem_operand(token, symbols):
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"expected offset(reg), got {token!r}")
    return _resolve(match.group(1), symbols), reg(match.group(2))


def _encode(mnemonic, ops, addr, symbols):
    enc = isa
    if mnemonic in _R_OPS:
        f3, f7 = _R_OPS[mnemonic]
        return [enc.encode_r(isa.OPCODE_OP, reg(ops[0]), f3, reg(ops[1]), reg(ops[2]), f7)]
    if mnemonic in _I_ARITH:
        return [enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), _I_ARITH[mnemonic],
                             reg(ops[1]), _resolve(ops[2], symbols))]
    if mnemonic in ("slli", "srli", "srai"):
        shamt = _resolve(ops[2], symbols) & 0x1F
        f3 = 1 if mnemonic == "slli" else 5
        imm = shamt | (0x400 if mnemonic == "srai" else 0)
        return [enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), f3, reg(ops[1]), imm)]
    if mnemonic in _LOADS:
        offset, base = _mem_operand(ops[1], symbols)
        return [enc.encode_i(isa.OPCODE_LOAD, reg(ops[0]), _LOADS[mnemonic], base, offset)]
    if mnemonic in _STORES:
        offset, base = _mem_operand(ops[1], symbols)
        return [enc.encode_s(isa.OPCODE_STORE, _STORES[mnemonic], base, reg(ops[0]), offset)]
    if mnemonic in _BRANCHES:
        target = _resolve(ops[2], symbols)
        return [enc.encode_b(isa.OPCODE_BRANCH, _BRANCHES[mnemonic],
                             reg(ops[0]), reg(ops[1]), target - addr)]
    if mnemonic in ("beqz", "bnez"):
        f3 = 0 if mnemonic == "beqz" else 1
        target = _resolve(ops[1], symbols)
        return [enc.encode_b(isa.OPCODE_BRANCH, f3, reg(ops[0]), 0, target - addr)]
    if mnemonic == "lui":
        return [enc.encode_u(isa.OPCODE_LUI, reg(ops[0]), _resolve(ops[1], symbols))]
    if mnemonic == "auipc":
        return [enc.encode_u(isa.OPCODE_AUIPC, reg(ops[0]), _resolve(ops[1], symbols))]
    if mnemonic == "jal":
        if len(ops) == 1:
            ops = ["ra", ops[0]]
        target = _resolve(ops[1], symbols)
        return [enc.encode_j(isa.OPCODE_JAL, reg(ops[0]), target - addr)]
    if mnemonic == "jalr":
        if len(ops) == 1:
            return [enc.encode_i(isa.OPCODE_JALR, 1, 0, reg(ops[0]), 0)]
        offset, base = _mem_operand(ops[1], symbols)
        return [enc.encode_i(isa.OPCODE_JALR, reg(ops[0]), 0, base, offset)]
    if mnemonic == "j":
        target = _resolve(ops[0], symbols)
        return [enc.encode_j(isa.OPCODE_JAL, 0, target - addr)]
    if mnemonic == "ret":
        return [enc.encode_i(isa.OPCODE_JALR, 0, 0, 1, 0)]
    if mnemonic == "call":
        target = _resolve(ops[0], symbols)
        offset = target - addr
        hi, lo = _split_hi_lo(offset)
        return [
            enc.encode_u(isa.OPCODE_AUIPC, 1, hi),
            enc.encode_i(isa.OPCODE_JALR, 1, 0, 1, lo),
        ]
    if mnemonic == "li":
        value = _resolve(ops[1], symbols)
        hi, lo = _split_hi_lo(value)
        return [
            enc.encode_u(isa.OPCODE_LUI, reg(ops[0]), hi),
            enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), 0, reg(ops[0]), lo),
        ]
    if mnemonic == "la":
        return _encode("li", ops, addr, symbols)
    if mnemonic == "mv":
        return [enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), 0, reg(ops[1]), 0)]
    if mnemonic == "not":
        return [enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), 4, reg(ops[1]), -1)]
    if mnemonic == "seqz":
        return [enc.encode_i(isa.OPCODE_OP_IMM, reg(ops[0]), 3, reg(ops[1]), 1)]
    if mnemonic == "snez":
        return [enc.encode_r(isa.OPCODE_OP, reg(ops[0]), 3, 0, reg(ops[1]), 0)]
    if mnemonic == "nop":
        return [enc.encode_i(isa.OPCODE_OP_IMM, 0, 0, 0, 0)]
    if mnemonic == "ecall":
        return [0x00000073]
    if mnemonic == "ebreak":
        return [0x00100073]
    if mnemonic == "fence":
        return [0x0000000F]
    if mnemonic == "rdcycle":
        return [enc.encode_i(isa.OPCODE_SYSTEM, reg(ops[0]), 2, 0, -1024)]  # csrrs rd, cycle, x0
    if mnemonic == "rdinstret":
        return [enc.encode_i(isa.OPCODE_SYSTEM, reg(ops[0]), 2, 0, -1022)]
    if mnemonic == "cfu":
        funct7 = _resolve(ops[0], symbols)
        funct3 = _resolve(ops[1], symbols)
        return [enc.encode_cfu(funct7, funct3, reg(ops[2]), reg(ops[3]), reg(ops[4]))]
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")


def _split_hi_lo(value):
    value &= 0xFFFFFFFF
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    hi = ((value - lo) >> 12) & 0xFFFFF
    return hi, lo
