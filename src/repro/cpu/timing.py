"""Cycle-cost model for a VexRiscv configuration on a given memory map.

:class:`VexTiming` is consumed two ways:

1. Attached to the instruction-set :class:`~repro.cpu.machine.Machine`,
   where it charges per-instruction costs with trace-driven caches.
2. Queried by the analytic loop-nest model (:mod:`repro.perf.cost`) for
   the same unit costs, so whole-model estimates and instruction-level
   simulation agree by construction.
"""

from __future__ import annotations

from ..perf.cache import Cache
from ..perf.memories import ON_CHIP_SRAM, MemoryMap, MemoryRegion
from .vexriscv import VexRiscvConfig

_SOFT_DIV_CYCLES = 220  # software emulation of one division (no divider)

#: Early-terminating shift-add multiplier: ~1 cycle per significant bit
#: of the smaller operand (index arithmetic averages ~8).
ITERATIVE_MUL_CYCLES = 8
#: Radix-2 restoring divider.
ITERATIVE_DIV_CYCLES = 34
SOFT_DIV_CYCLES = _SOFT_DIV_CYCLES


def _flat_sram_map():
    return MemoryMap([
        MemoryRegion("ram", base=0, size=1 << 28, tech=ON_CHIP_SRAM),
    ])


class BranchPredictor:
    """Direction (2-bit counters) and target (BTB) prediction state."""

    def __init__(self, kind, table_size=128):
        self.kind = kind
        self.table_size = table_size
        self._counters = [1] * table_size  # weakly not-taken

    def predict_taken(self, pc, backward):
        if self.kind == "none":
            return False
        if self.kind == "static":
            return backward
        return self._counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        if self.kind in ("dynamic", "dynamic_target"):
            index = self._index(pc)
            counter = self._counters[index]
            self._counters[index] = min(3, counter + 1) if taken else max(0, counter - 1)

    def knows_target(self):
        """Only a BTB (dynamic_target) avoids the redirect bubble on a
        correctly-predicted taken branch."""
        return self.kind == "dynamic_target"

    def _index(self, pc):
        return (pc >> 2) % self.table_size


class VexTiming:
    """Per-event cycle costs for one CPU configuration."""

    def __init__(self, config=None, memory_map=None, line_bytes=32):
        self.config = config or VexRiscvConfig()
        self.memory_map = memory_map or _flat_sram_map()
        self.line_bytes = line_bytes
        self.icache = (
            Cache(self.config.icache_bytes, self.config.icache_ways,
                  line_bytes, name="icache")
            if self.config.has_icache else None
        )
        self.dcache = (
            Cache(self.config.dcache_bytes, self.config.dcache_ways,
                  line_bytes, name="dcache")
            if self.config.has_dcache else None
        )
        self.predictor = BranchPredictor(self.config.branch_prediction)

    # --- instruction fetch -------------------------------------------------------
    def fetch(self, pc):
        """Extra cycles to fetch the instruction at ``pc`` (0 = fully pipelined)."""
        region = self.memory_map.find(pc)
        if self.icache is not None and region.cacheable:
            if self.icache.access(pc):
                return 0
            return region.tech.line_fill_cycles(self.line_bytes)
        # No instruction cache: every fetch pays the region's word latency
        # beyond the one pipelined cycle.
        return region.tech.first_word_latency - 1

    # --- data access -----------------------------------------------------------------
    def load_cycles(self, addr):
        return self._data_access(addr, write=False)

    def store_cycles(self, addr):
        return self._data_access(addr, write=True)

    def _data_access(self, addr, write):
        region = self.memory_map.find(addr)
        if self.dcache is not None and region.cacheable:
            if self.dcache.access(addr, write=write):
                return 1
            return 1 + region.tech.line_fill_cycles(self.line_bytes)
        if write:
            return region.tech.write_latency
        return region.tech.first_word_latency

    # --- control flow ---------------------------------------------------------------
    def branch_penalty(self, pc, taken, backward):
        """Extra cycles for a branch beyond its 1-cycle slot."""
        predicted = self.predictor.predict_taken(pc, backward)
        self.predictor.update(pc, taken)
        if predicted != taken:
            return self.config.mispredict_penalty
        if taken and not self.predictor.knows_target():
            return 1  # correct direction but target computed in decode
        return 0

    def jump_penalty(self, direct):
        return 1 if direct else 2

    # --- functional units ---------------------------------------------------------------
    def mul_cycles(self):
        mul = self.config.multiplier
        if mul == "single_cycle":
            return 1
        if mul == "iterative":
            return ITERATIVE_MUL_CYCLES
        raise RuntimeError("MUL executed but CPU has no multiplier")

    def div_cycles(self):
        if self.config.divider == "iterative":
            return ITERATIVE_DIV_CYCLES
        return SOFT_DIV_CYCLES

    def shift_cycles(self, shamt):
        if self.config.shifter == "barrel":
            return 1
        return 1 + max(0, int(shamt))

    def hazard_cycles(self, is_load):
        if self.config.bypassing:
            return 1 if is_load else 0
        return 2

    def checks_alignment(self):
        return self.config.hw_error_checking

    # --- bookkeeping ----------------------------------------------------------------
    def reset_stats(self):
        for cache in (self.icache, self.dcache):
            if cache is not None:
                cache.reset_stats()
