"""Executable RV32IM machine: the instruction-set simulator.

This is the functional CPU model (the VexRiscv stand-in).  It executes
real encoded instructions against a byte-addressed memory, optionally
attached to a CFU (any object with ``execute(funct3, funct7, a, b) ->
(result, cycles)``) and a timing model (:mod:`repro.cpu.timing`), in
which case it also accumulates a cycle count.

The machine halts on ``ebreak``; ``ecall`` invokes a pluggable handler
(default: treat ``a7 == 93`` as exit-with-code-in-``a0``, anything else
halts too).

Two execution paths share the same architectural semantics:

- :meth:`Machine.step` — the reference interpreter: fetch, decode, and
  execute one instruction.  Nothing is cached; this is the slow path
  the differential suite (``tests/test_sim_differential.py``) holds the
  fast path against.
- :meth:`Machine.run` (default ``fast=True``) — the fast path: a
  decoded-instruction cache keyed by physical address feeds a
  pre-specialized dispatch loop that keeps the hot state (pc, cycle and
  instruction counters, the register file) in locals.  ``isa.decode``
  runs once per *static* instruction; each decoded instruction is bound
  to a dispatch kind with its operand fields already extracted (and
  pc-relative targets precomputed).  Stores invalidate the cache at
  page granularity, so self-modifying code stays correct.
"""

from __future__ import annotations

from time import perf_counter

from . import isa
from .isa import OPCODE_CUSTOM0

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_MASK32 = 0xFFFFFFFF

#: Simulator backend names accepted by :meth:`Machine.run` (and
#: everything that forwards to it).  ``auto`` is the tiered mode:
#: decoded-op dispatch with hot blocks promoted to the translation tier
#: (falling back to tier 1 wherever translation is refused);
#: ``translated`` is an alias for the same tiered mode, ``fast`` pins
#: tier 1 only, ``step`` is the reference interpreter.
SIM_BACKENDS = ("auto", "translated", "fast", "step")


def _sext32(value):
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


class MemoryAccessError(RuntimeError):
    pass


class MemorySnapshot:
    """A copy-on-write undo log: page index -> the page's bytes at
    snapshot time (``None`` = the page did not exist yet).  Taking one
    copies nothing; the owning memory records a page's pre-write image
    here the first time that page is mutated afterwards, so snapshot
    and restore both cost O(pages touched), never O(total memory)."""

    __slots__ = ("pages",)

    def __init__(self):
        self.pages = {}

    @property
    def pages_recorded(self):
        return len(self.pages)


class CowPagesMixin:
    """The copy-on-write bookkeeping shared by :class:`SparseMemory`
    and the SoC bus: live snapshots, the protected-page set, and the
    registered page caches (tier-2 blocks bake page lookups — they must
    be evicted whenever a page's writability or identity changes).

    The protected set's *identity* is load-bearing: generated code and
    resolver closures capture it directly, so it is only ever mutated
    in place.
    """

    def _init_cow(self):
        self._snapshots = []       # live MemorySnapshots, oldest first
        self._cow_protected = set()  # pages some live snapshot hasn't recorded
        self._page_caches = []     # dicts keyed by page index, evicted on COW events

    def register_page_cache(self, cache):
        """Register a page-index-keyed dict to clear on COW transitions
        (protection changes flip what a cached page tuple may assert)."""
        self._page_caches.append(cache)
        return cache

    def _evict_page_caches(self):
        for cache in self._page_caches:
            cache.clear()

    def _cow_record(self, index):
        """Save page ``index``'s current image into every live snapshot
        that lacks one, then lift the write protection."""
        data = self._cow_page_image(index)
        for snap in self._snapshots:
            if index not in snap.pages:
                snap.pages[index] = data
        self._cow_protected.discard(index)
        for cache in self._page_caches:
            cache.pop(index, None)

    def snapshot(self):
        """O(1) copy-on-write snapshot of the current memory image."""
        snap = MemorySnapshot()
        self._snapshots.append(snap)
        self._cow_protected.update(self._cow_all_pages())
        self._evict_page_caches()
        return snap

    def discard_snapshot(self, snap):
        """Forget a snapshot (its undo records stop accumulating)."""
        if snap in self._snapshots:
            self._snapshots.remove(snap)
            protected = set()
            for live in self._snapshots:
                protected.update(index for index in self._cow_all_pages()
                                 if index not in live.pages)
            self._cow_protected.clear()
            self._cow_protected.update(protected)
            self._evict_page_caches()

    def restore(self, snap):
        """Rewrite every page the snapshot recorded back to its image,
        in place (page identity is preserved, so baked references stay
        valid).  Returns the sorted list of restored page indices."""
        if snap not in self._snapshots:
            raise ValueError("snapshot does not belong to this memory "
                             "(or was discarded)")
        restored = []
        for index, saved in sorted(snap.pages.items()):
            if index in self._cow_protected:
                self._cow_record(index)  # later snapshots keep their view
            self._cow_restore_page(index, saved)
            restored.append(index)
        self._evict_page_caches()
        return restored


class SparseMemory(CowPagesMixin):
    """Byte-addressable sparse memory over 4 KiB pages (little endian)."""

    def __init__(self):
        self._pages = {}
        self._init_cow()

    def _page(self, addr):
        index = addr >> _PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[index] = page
            for snap in self._snapshots:
                snap.pages.setdefault(index, None)
        return page

    # --- COW hooks -------------------------------------------------------------------
    def _cow_all_pages(self):
        return self._pages

    def _cow_page_image(self, index):
        page = self._pages.get(index)
        return bytes(page) if page is not None else None

    def _cow_restore_page(self, index, saved):
        if saved is None:
            self._pages.pop(index, None)
            return
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[index] = page
        page[:] = saved

    # --- access ---------------------------------------------------------------------
    def load_bytes(self, addr, data):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            data = bytes(byte & 0xFF for byte in data)
        view = memoryview(data)
        offset = 0
        remaining = len(view)
        protected = self._cow_protected
        while remaining:
            if protected and (addr >> _PAGE_BITS) in protected:
                self._cow_record(addr >> _PAGE_BITS)
            page = self._page(addr)
            start = addr & (_PAGE_SIZE - 1)
            chunk = min(remaining, _PAGE_SIZE - start)
            page[start:start + chunk] = view[offset:offset + chunk]
            addr += chunk
            offset += chunk
            remaining -= chunk

    def read_bytes(self, addr, length):
        parts = []
        remaining = length
        while remaining > 0:
            page = self._page(addr)
            start = addr & (_PAGE_SIZE - 1)
            chunk = min(remaining, _PAGE_SIZE - start)
            parts.append(bytes(page[start:start + chunk]))
            addr += chunk
            remaining -= chunk
        return b"".join(parts)

    def read8(self, addr):
        return self._page(addr)[addr & (_PAGE_SIZE - 1)]

    def write8(self, addr, value):
        if self._cow_protected and (addr >> _PAGE_BITS) in self._cow_protected:
            self._cow_record(addr >> _PAGE_BITS)
        self._page(addr)[addr & (_PAGE_SIZE - 1)] = value & 0xFF

    def read16(self, addr):
        return self.read8(addr) | self.read8(addr + 1) << 8

    def write16(self, addr, value):
        self.write8(addr, value)
        self.write8(addr + 1, value >> 8)

    def read32(self, addr):
        page = self._page(addr)
        offset = addr & (_PAGE_SIZE - 1)
        if offset <= _PAGE_SIZE - 4:
            return int.from_bytes(page[offset:offset + 4], "little")
        return self.read16(addr) | self.read16(addr + 2) << 16

    def write32(self, addr, value):
        if self._cow_protected and (addr >> _PAGE_BITS) in self._cow_protected:
            self._cow_record(addr >> _PAGE_BITS)
        page = self._page(addr)
        offset = addr & (_PAGE_SIZE - 1)
        if offset <= _PAGE_SIZE - 4:
            page[offset:offset + 4] = (value & _MASK32).to_bytes(4, "little")
        else:
            self.write16(addr, value)
            self.write16(addr + 2, value >> 16)


# --- decoded-instruction dispatch kinds -------------------------------------------
#
# Each cached entry is a 7-tuple ``(kind, a, b, c, d, ins, reads)``:
# ``kind`` selects the handler in the fast loop, ``a``..``d`` carry the
# pre-extracted operand fields (meaning depends on the kind), ``ins`` is
# the full decoded :class:`~repro.cpu.isa.Instruction`, and ``reads`` is
# the register-read tuple the timing model's hazard interlock checks.
# Kind numbering is grouped so the fast loop can dispatch on ranges:
#   0..12   simple ALU (no extra timing cost)
#   14..19  shifts          20..23 multiplies        24..27 divides
#   32..36  loads           40..42 stores            64..69 branches
#   80..81  jumps           96..   CFU/system/fence/raise

_K_ADDI, _K_SLTI, _K_SLTIU, _K_XORI, _K_ORI, _K_ANDI = range(6)
_K_ADD, _K_SUB, _K_SLT, _K_SLTU, _K_XOR, _K_OR, _K_AND = range(6, 13)
_K_CONST = 13                      # lui/auipc: value fully precomputed
_K_SLLI, _K_SRLI, _K_SRAI, _K_SLL, _K_SRL, _K_SRA = range(14, 20)
_K_MUL, _K_MULH, _K_MULHSU, _K_MULHU = range(20, 24)
_K_DIV, _K_DIVU, _K_REM, _K_REMU = range(24, 28)
_K_LB, _K_LH, _K_LW, _K_LBU, _K_LHU = range(32, 37)
_K_SB, _K_SH, _K_SW = range(40, 43)
_K_BEQ, _K_BNE, _K_BLT, _K_BGE, _K_BLTU, _K_BGEU = range(64, 70)
_K_JAL, _K_JALR = 80, 81
_K_CFU, _K_EBREAK, _K_ECALL, _K_CSR, _K_FENCE, _K_RAISE = range(96, 102)

_ALU_IMM_KINDS = {0: _K_ADDI, 2: _K_SLTI, 3: _K_SLTIU, 4: _K_XORI,
                  6: _K_ORI, 7: _K_ANDI}
_ALU_REG_KINDS = {0: _K_ADD, 2: _K_SLT, 3: _K_SLTU, 4: _K_XOR,
                  6: _K_OR, 7: _K_AND}
_MULDIV_KINDS = {0: _K_MUL, 1: _K_MULH, 2: _K_MULHSU, 3: _K_MULHU,
                 4: _K_DIV, 5: _K_DIVU, 6: _K_REM, 7: _K_REMU}
_LOAD_KINDS = {0: _K_LB, 1: _K_LH, 2: _K_LW, 4: _K_LBU, 5: _K_LHU}
_STORE_KINDS = {0: _K_SB, 1: _K_SH, 2: _K_SW}
_BRANCH_KINDS = {0: _K_BEQ, 1: _K_BNE, 4: _K_BLT, 5: _K_BGE,
                 6: _K_BLTU, 7: _K_BGEU}


def classify_kind(kind):
    """Instruction-mix class of a dispatch kind (profiler/metrics view)."""
    if kind <= _K_CONST:
        return "alu"
    if kind < _K_MUL:
        return "shift"
    if kind < _K_DIV:
        return "mul"
    if kind < 28:
        return "div"
    if kind < 40:
        return "load"
    if kind < 64:
        return "store"
    if kind < _K_JAL:
        return "branch"
    if kind < _K_CFU:
        return "jump"
    if kind == _K_CFU:
        return "cfu"
    if kind == _K_RAISE:
        return "unknown"
    return "system"


def _hazard_reads(ins):
    """Registers the incoming instruction reads, per the interlock rule
    in :meth:`Machine._hazard_stall` (must match it exactly)."""
    reads = ()
    if ins.opcode not in (isa.OPCODE_LUI, isa.OPCODE_AUIPC, isa.OPCODE_JAL):
        reads = (ins.rs1,)
    if ins.opcode in (isa.OPCODE_OP, isa.OPCODE_BRANCH, isa.OPCODE_STORE,
                      OPCODE_CUSTOM0):
        reads = reads + (ins.rs2,)
    return reads


def _muldiv_kind(kind, rs1, rs2):
    """M-extension arithmetic for the fast loop (timing cost is the
    caller's job)."""
    s1 = rs1 - (1 << 32) if rs1 & 0x80000000 else rs1
    s2 = rs2 - (1 << 32) if rs2 & 0x80000000 else rs2
    if kind == _K_MUL:
        return s1 * s2
    if kind == _K_MULH:
        return (s1 * s2) >> 32
    if kind == _K_MULHSU:
        return (s1 * rs2) >> 32
    if kind == _K_MULHU:
        return (rs1 * rs2) >> 32
    if kind == _K_DIV:
        return -1 if s2 == 0 else _div_trunc(s1, s2)
    if kind == _K_DIVU:
        return _MASK32 if rs2 == 0 else rs1 // rs2
    if kind == _K_REM:
        return s1 if s2 == 0 else s1 - _div_trunc(s1, s2) * s2
    return rs1 if rs2 == 0 else rs1 % rs2


def _specialize(pc, ins):
    """Bind a decoded instruction to its dispatch kind with operand
    fields extracted and pc-relative values precomputed."""
    op = ins.opcode
    reads = _hazard_reads(ins)
    f3 = ins.funct3

    if op == isa.OPCODE_OP_IMM:
        if f3 == 1:
            return (_K_SLLI, ins.rd, ins.rs1, ins.imm & 0x1F, 0, ins, reads)
        if f3 == 5:
            kind = _K_SRAI if ins.funct7 & 0x20 else _K_SRLI
            return (kind, ins.rd, ins.rs1, ins.imm & 0x1F, 0, ins, reads)
        imm = ins.imm & _MASK32 if f3 == 3 else ins.imm
        return (_ALU_IMM_KINDS[f3], ins.rd, ins.rs1, imm, 0, ins, reads)
    if op == isa.OPCODE_OP:
        if ins.funct7 == 0x01:
            return (_MULDIV_KINDS[f3], ins.rd, ins.rs1, ins.rs2, 0, ins, reads)
        if f3 == 0:
            kind = _K_SUB if ins.funct7 & 0x20 else _K_ADD
        elif f3 == 1:
            kind = _K_SLL
        elif f3 == 5:
            kind = _K_SRA if ins.funct7 & 0x20 else _K_SRL
        else:
            kind = _ALU_REG_KINDS[f3]
        return (kind, ins.rd, ins.rs1, ins.rs2, 0, ins, reads)
    if op == isa.OPCODE_LUI:
        return (_K_CONST, ins.rd, 0, ins.imm & _MASK32, 0, ins, reads)
    if op == isa.OPCODE_AUIPC:
        return (_K_CONST, ins.rd, 0, (pc + ins.imm) & _MASK32, 0, ins, reads)
    if op == isa.OPCODE_JAL:
        return (_K_JAL, ins.rd, (pc + 4) & _MASK32,
                (pc + ins.imm) & _MASK32, 0, ins, reads)
    if op == isa.OPCODE_JALR:
        return (_K_JALR, ins.rd, ins.rs1, ins.imm, (pc + 4) & _MASK32,
                ins, reads)
    if op == isa.OPCODE_BRANCH:
        kind = _BRANCH_KINDS.get(f3)
        if kind is None:
            return (_K_RAISE, 0, 0, "bad branch funct3", 0, ins, reads)
        return (kind, ins.rs1, ins.rs2, (pc + ins.imm) & _MASK32,
                ins.imm < 0, ins, reads)
    if op == isa.OPCODE_LOAD:
        kind = _LOAD_KINDS.get(f3)
        if kind is None:
            return (_K_RAISE, 0, 0, "bad load funct3", 0, ins, reads)
        return (kind, ins.rd, ins.rs1, ins.imm, 0, ins, reads)
    if op == isa.OPCODE_STORE:
        kind = _STORE_KINDS.get(f3)
        if kind is None:
            return (_K_RAISE, 0, 0, "bad store funct3", 0, ins, reads)
        return (kind, ins.rs1, ins.rs2, ins.imm, 0, ins, reads)
    if op == OPCODE_CUSTOM0:
        return (_K_CFU, ins.rd, ins.rs1, ins.rs2,
                (ins.funct3, ins.funct7), ins, reads)
    if op == isa.OPCODE_SYSTEM:
        if ins.raw == 0x00100073:
            return (_K_EBREAK, 0, 0, 0, 0, ins, reads)
        if ins.raw == 0x00000073:
            return (_K_ECALL, 0, 0, 0, 0, ins, reads)
        if ins.funct3 in (1, 2, 3):
            return (_K_CSR, ins.rd, 0, ins.imm & 0xFFF, 0, ins, reads)
        return (_K_RAISE, 0, 0,
                f"unsupported SYSTEM instruction 0x{ins.raw:08x}",
                0, ins, reads)
    if op == isa.OPCODE_MISC_MEM:
        return (_K_FENCE, 0, 0, 0, 0, ins, reads)
    return (_K_RAISE, 0, 0,
            f"illegal instruction 0x{ins.raw:08x} at pc=0x{pc:08x}",
            0, ins, reads)


def _timing_state(timing):
    """Capture a timing model's mutable state (trace-driven cache tags
    and hit/miss tallies, branch-predictor counters) for snapshots."""
    if timing is None:
        return None
    state = {}
    for name in ("icache", "dcache"):
        cache = getattr(timing, name, None)
        if cache is not None:
            state[name] = (cache.hits, cache.misses,
                           [list(tags) for tags in cache._sets])
    predictor = getattr(timing, "predictor", None)
    counters = getattr(predictor, "_counters", None)
    if counters is not None:
        state["predictor"] = list(counters)
    return state


def _restore_timing_state(timing, state):
    """Rewind a timing model in place — generated blocks bake the cache
    set list and predictor counter list identities, so the inner lists
    are rewritten, never rebound."""
    if timing is None or state is None:
        return
    for name in ("icache", "dcache"):
        cache = getattr(timing, name, None)
        if cache is not None and name in state:
            hits, misses, sets = state[name]
            cache.hits = hits
            cache.misses = misses
            for tags, saved in zip(cache._sets, sets):
                tags[:] = saved
    predictor = getattr(timing, "predictor", None)
    counters = getattr(predictor, "_counters", None)
    if counters is not None and "predictor" in state:
        counters[:] = state["predictor"]


class Machine:
    """A single-hart RV32IM machine with optional CFU and timing model."""

    def __init__(self, memory=None, cfu=None, timing=None):
        self.memory = memory if memory is not None else SparseMemory()
        self.cfu = cfu
        self.timing = timing
        self.regs = [0] * 32
        self.pc = 0
        self.instret = 0
        self.cycles = 0
        self.halted = False
        self.exit_code = None
        self.ecall_handler = self._default_ecall
        # Hazard tracking for the timing model.
        self._pending_rd = 0
        self._pending_is_load = False
        # Decoded-instruction cache: pc -> specialized op tuple, plus a
        # page index -> [pc] map for page-granular store invalidation.
        self._decode_cache = {}
        self._decode_pages = {}
        self.decode_count = 0          # static decodes performed
        self.invalidation_count = 0    # pages invalidated by stores/flushes
        # Tier-2 block cache (repro.cpu.translate): pc -> BlockEntry,
        # plus the page -> [entry pc] map mirroring the decode cache's
        # invalidation contract.  NOTE: generated blocks bake direct
        # references to _decode_pages/_block_pages — mutate those dicts
        # in place, never rebind them.
        self._blocks = {}
        self._block_pages = {}
        self._block_hot = {}           # pc -> dispatch count until promotion
        self._block_fault = [0, 0, -1]  # (pc, cycles, instrs) at in-block fault
        self._block_timing = None      # timing model the blocks were baked for
        self._block_traffic = False    # bus traffic accounting at bake time
        self.hot_threshold = 16        # block-entry dispatches before promotion
        self.block_promotions = 0      # successful block translations
        self.block_invalidation_count = 0
        self.block_compile_seconds = 0.0
        self.last_run_backend = None
        # Machine-level data-page tuple cache shared by every generated
        # block (page index -> resolved access tuple).  Its identity is
        # baked into generated code; mutate in place, never rebind.  The
        # memory evicts entries on COW transitions (see register_page_cache).
        self._data_page_cache = {}
        self._page_resolver = None
        if hasattr(self.memory, "register_page_cache"):
            self.memory.register_page_cache(self._data_page_cache)
        # Persistent cross-process translation cache (a
        # :class:`~repro.core.codecache.CodeCache`, or None to only
        # code-generate in-process).
        self.compile_cache = None
        self.block_cache_loads = 0     # blocks bound from cached source
        self.snapshot_count = 0
        self.restore_count = 0
        self.pages_restored = 0

    # --- decode cache ---------------------------------------------------------------
    @property
    def decode_cache_entries(self):
        return len(self._decode_cache)

    def flush_decode_cache(self):
        """Drop every cached decode (e.g. after loading a new image).
        Translated blocks are built from cached decodes, so they go
        with it."""
        if self._decode_pages:
            self.invalidation_count += len(self._decode_pages)
        self._decode_cache.clear()
        self._decode_pages.clear()
        self.flush_block_cache()

    def _invalidate_page(self, page):
        cache = self._decode_cache
        for pc in self._decode_pages.pop(page):
            cache.pop(pc, None)
        self.invalidation_count += 1

    # --- block (tier-2) cache -------------------------------------------------------
    @property
    def block_cache_entries(self):
        """Translated blocks currently cached (sentinels excluded)."""
        return sum(1 for entry in self._blocks.values()
                   if entry.fn is not None)

    def flush_block_cache(self):
        """Drop every translated block (and the promotion counters)."""
        if self._block_pages:
            self.block_invalidation_count += len(self._block_pages)
        self._blocks.clear()
        self._block_pages.clear()
        self._block_hot.clear()
        self._data_page_cache.clear()
        self._page_resolver = None  # timing/traffic may have changed

    def _invalidate_block_page(self, page):
        blocks = self._blocks
        for pc in self._block_pages.pop(page):
            blocks.pop(pc, None)
        self.block_invalidation_count += 1

    def _invalidate_store(self, addr, span):
        """Invalidate decode + block caches for a store to ``addr``
        (called from inside generated blocks).  Returns True when
        anything was dropped, telling the block to bail back to the
        dispatch loop."""
        hit = False
        page = addr >> _PAGE_BITS
        if page in self._decode_pages:
            self._invalidate_page(page)
            hit = True
        if page in self._block_pages:
            self._invalidate_block_page(page)
            hit = True
        last = (addr + span) >> _PAGE_BITS
        if last != page:
            if last in self._decode_pages:
                self._invalidate_page(last)
                hit = True
            if last in self._block_pages:
                self._invalidate_block_page(last)
                hit = True
        return hit

    def invalidate_pages(self, addr, length):
        """Drop decode + block cache entries only for the pages covering
        ``[addr, addr + length)`` — the page-granular alternative to
        :meth:`flush_decode_cache` for reload paths where most resident
        code is unchanged.  Returns the number of pages invalidated."""
        if length <= 0:
            return 0
        dropped = 0
        first = addr >> _PAGE_BITS
        last = (addr + length - 1) >> _PAGE_BITS
        for page in range(first, last + 1):
            hit = False
            if page in self._decode_pages:
                self._invalidate_page(page)
                hit = True
            if page in self._block_pages:
                self._invalidate_block_page(page)
                hit = True
            if hit:
                dropped += 1
        return dropped

    # --- snapshots -------------------------------------------------------------------
    def snapshot(self):
        """An O(pages-touched) copy-on-write snapshot of the whole
        machine: memory (COW — nothing is copied until written),
        architectural registers, counters, the timing model's cache and
        predictor state, and the CFU's state (via its
        ``snapshot_state()`` protocol).  The decode and block caches are
        *not* part of the snapshot — they are derived state, and
        :meth:`restore` invalidates them only for the restored pages, so
        warm translated code survives across restore cycles."""
        self.snapshot_count += 1
        return {
            "memory": self.memory.snapshot(),
            "regs": list(self.regs),
            "pc": self.pc,
            "instret": self.instret,
            "cycles": self.cycles,
            "halted": self.halted,
            "exit_code": self.exit_code,
            "pending_rd": self._pending_rd,
            "pending_is_load": self._pending_is_load,
            "timing": _timing_state(self.timing),
            "cfu": (self.cfu.snapshot_state()
                    if hasattr(self.cfu, "snapshot_state") else None),
        }

    def restore(self, snap):
        """Rewind to a :meth:`snapshot`.  Costs O(pages written since
        the snapshot); decode/block cache entries are invalidated only
        for restored pages.  Returns the number of pages restored."""
        restored = self.memory.restore(snap["memory"])
        for page in restored:
            if page in self._decode_pages:
                self._invalidate_page(page)
            if page in self._block_pages:
                self._invalidate_block_page(page)
        self.regs[:] = snap["regs"]
        self.pc = snap["pc"]
        self.instret = snap["instret"]
        self.cycles = snap["cycles"]
        self.halted = snap["halted"]
        self.exit_code = snap["exit_code"]
        self._pending_rd = snap["pending_rd"]
        self._pending_is_load = snap["pending_is_load"]
        _restore_timing_state(self.timing, snap["timing"])
        if snap["cfu"] is not None and hasattr(self.cfu, "restore_state"):
            self.cfu.restore_state(snap["cfu"])
        self.restore_count += 1
        self.pages_restored += len(restored)
        return len(restored)

    def discard_snapshot(self, snap):
        """Stop a snapshot's undo log from accumulating (it can no
        longer be restored)."""
        self.memory.discard_snapshot(snap["memory"])

    def _promote(self, pc):
        """Translate the block at ``pc`` and install it (or a sentinel
        on refusal, so tier 1 keeps handling this pc)."""
        from .translate import translate_block

        started = perf_counter()
        entry = translate_block(self, pc)
        self.block_compile_seconds += perf_counter() - started
        self._blocks[pc] = entry
        self._block_pages.setdefault(pc >> _PAGE_BITS, []).append(pc)
        if entry.fn is not None:
            self.block_promotions += 1
        return entry

    def _decode_pc(self, pc):
        word = self.memory.read32(pc)
        op = _specialize(pc, isa.decode(word))
        self._decode_cache[pc] = op
        pages = self._decode_pages
        first = pc >> _PAGE_BITS
        pages.setdefault(first, []).append(pc)
        last = (pc + 3) >> _PAGE_BITS
        if last != first:
            pages.setdefault(last, []).append(pc)
        self.decode_count += 1
        return op

    # --- observability --------------------------------------------------------------
    def export_metrics(self, registry, **labels):
        """Feed the machine's counters into a
        :class:`~repro.core.metrics.MetricsRegistry`: retired
        instructions and cycles, decode-cache health, and the timing
        model's trace-driven i/d-cache hit/miss counts."""
        registry.counter("sim_instructions", **labels).add(self.instret)
        registry.counter("sim_cycles", **labels).add(self.cycles)
        registry.counter("sim_decodes", **labels).add(self.decode_count)
        registry.counter("sim_decode_invalidations",
                         **labels).add(self.invalidation_count)
        # Cache-size gauges are labelled by the backend tier that last
        # ran, so a decode-cache count from a pure tier-1 run is never
        # conflated with one from a tiered (translated) run.
        tier = self.last_run_backend or "none"
        registry.gauge("sim_decode_cache_entries", tier=tier,
                       **labels).set(self.decode_cache_entries)
        registry.gauge("sim_block_cache_entries", tier=tier,
                       **labels).set(self.block_cache_entries)
        registry.counter("sim_block_promotions",
                         **labels).add(self.block_promotions)
        registry.counter("sim_block_invalidations",
                         **labels).add(self.block_invalidation_count)
        registry.counter("sim_block_cache_loads",
                         **labels).add(self.block_cache_loads)
        registry.counter("sim_snapshots", **labels).add(self.snapshot_count)
        registry.counter("sim_restores", **labels).add(self.restore_count)
        registry.counter("sim_pages_restored",
                         **labels).add(self.pages_restored)
        if self.timing is not None:
            for cache in (self.timing.icache, self.timing.dcache):
                if cache is None:
                    continue
                registry.counter("sim_cache_hits", cache=cache.name,
                                 **labels).add(cache.hits)
                registry.counter("sim_cache_misses", cache=cache.name,
                                 **labels).add(cache.misses)
        return registry

    # --- program loading -----------------------------------------------------------
    def load_program(self, code, addr=0):
        self.memory.load_bytes(addr, code)
        self.flush_decode_cache()
        self.pc = addr

    def load_assembly(self, source, addr=0):
        from .assembler import assemble

        code, symbols = assemble(source, origin=addr)
        self.load_program(code, addr)
        return symbols

    # --- register helpers -------------------------------------------------------------
    def set_reg(self, index, value):
        if index:
            self.regs[index] = value & _MASK32

    def get_reg(self, index):
        return self.regs[index]

    # --- execution ------------------------------------------------------------------
    def run(self, max_instructions=1_000_000, fast=True, backend=None):
        """Execute until halt or the instruction budget is exhausted.

        ``backend`` picks the execution tier (see :data:`SIM_BACKENDS`):
        ``"auto"``/``"translated"`` run the tiered loop (decoded-op
        dispatch promoting hot basic blocks to generated code),
        ``"fast"`` pins the tier-1 dispatch loop, ``"step"`` the
        reference interpreter.  When ``backend`` is None it resolves
        from the legacy ``fast`` flag: ``fast=True`` -> ``"auto"``,
        ``fast=False`` -> ``"step"``.  All backends are architecturally
        identical (the differential suite asserts it).  The budget
        counts executed instructions: a program that halts *on* its
        ``max_instructions``-th instruction completes normally; the
        budget error is raised only when the machine is still running
        after the budget is spent.
        """
        if backend is None:
            backend = "auto" if fast else "step"
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown sim backend {backend!r}"
                f" (expected one of {', '.join(SIM_BACKENDS)})")
        self.last_run_backend = backend
        if backend != "step":
            self._run_fast(max_instructions,
                           translate=backend != "fast")
        else:
            executed = 0
            while executed < max_instructions and not self.halted:
                self.step()
                executed += 1
        if not self.halted:
            raise RuntimeError(f"instruction budget exhausted at pc=0x{self.pc:08x}")
        return self.exit_code

    def _run_fast(self, max_instructions, profile=None, translate=False):
        """The fast path: cached decode + pre-specialized dispatch with
        hot state in locals.  Bit-identical to the ``step()`` loop,
        timing model and CFU included.

        ``translate=True`` adds the tier-2 block layer: block-entry pcs
        (targets of control transfers) are counted, promoted to
        generated code (:mod:`repro.cpu.translate`) once hot, and
        dispatched whole; everything else stays on the tier-1 loop.

        ``profile`` (a :class:`~repro.cpu.profiler.MachineProfiler`, or
        anything exposing ``pc_buckets``/``bucket_for_pc``) enables
        in-loop cycle attribution: every cycle spent between two
        dispatches — fetch stalls, hazard interlocks, and execution cost
        alike — is charged to the pc that was dispatched, exactly as the
        reference ``step()``-based profiler attributes it.  A faulting
        instruction's partial cycles stay unattributed on both paths.
        The cost when profiling is one dict lookup per instruction; when
        not profiling, a single local-bool branch."""
        memory = self.memory
        regs = self.regs
        timing = self.timing
        timed = timing is not None
        cfu = self.cfu
        cache = self._decode_cache
        cache_get = cache.get
        cache_pages = self._decode_pages
        block_pages = self._block_pages
        decode_pc = self._decode_pc
        read8 = memory.read8
        read16 = memory.read16
        read32 = memory.read32
        write8 = memory.write8
        write16 = memory.write16
        write32 = memory.write32
        # Mirrors _check_align: alignment faults unless a timing model
        # says the hardware error checking was removed.
        check_align = not timed or timing.checks_alignment()
        M = _MASK32
        pc = self.pc
        instret = self.instret
        cycles = self.cycles
        pending_rd = self._pending_rd
        pending_is_load = self._pending_is_load
        halted = self.halted
        executed = 0
        profiling = profile is not None
        if profiling:
            buckets_get = profile.pc_buckets.get
            new_bucket = profile.bucket_for_pc
        last_pc = 0
        last_cycles = cycles
        pending = False
        if translate:
            # Blocks bake the timing model's identity and the bus
            # traffic-accounting mode; if either moved under us, the
            # cache is for a different machine configuration.
            traffic_now = getattr(memory, "_traffic", None) is not None
            if self._block_timing is not timing or \
                    self._block_traffic != traffic_now:
                self.flush_block_cache()
                self._block_timing = timing
                self._block_traffic = traffic_now
            blocks_get = self._blocks.get
            hot = self._block_hot
            hot_get = hot.get
            threshold = self.hot_threshold
            fault_box = self._block_fault
            # Pretend we arrived by jump so the entry pc counts as a
            # block leader.
            prev_k = _K_JAL
        try:
            while executed < max_instructions and not halted:
                if translate:
                    entry = blocks_get(pc)
                    if entry is not None:
                        fn = entry.fn
                        if fn is not None and \
                                executed + entry.length <= max_instructions:
                            if profiling:
                                if pending:
                                    bucket = buckets_get(last_pc)
                                    if bucket is None:
                                        bucket = new_bucket(last_pc)
                                    bucket[0] += cycles - last_cycles
                                    bucket[1] += 1
                                    pending = False
                                fn = entry.fn_prof
                                if fn is None:
                                    fn = entry.ensure_profiled(self)
                                fault_box[2] = -1
                                pc, cycles, n, pending_rd, pending_is_load = \
                                    fn(regs, cycles, pending_rd,
                                       pending_is_load, cfu,
                                       max_instructions - executed,
                                       buckets_get, new_bucket)
                            else:
                                fault_box[2] = -1
                                pc, cycles, n, pending_rd, pending_is_load = \
                                    fn(regs, cycles, pending_rd,
                                       pending_is_load, cfu,
                                       max_instructions - executed)
                            instret += n
                            executed += n
                            prev_k = _K_JAL
                            continue
                    # Count block leaders only: pcs reached through a
                    # control transfer (or a block exit).  Sequential
                    # pcs inside a would-be block never promote on
                    # their own.
                    elif 64 <= prev_k < 96 or prev_k == _K_ECALL:
                        count = hot_get(pc, 0) + 1
                        if count >= threshold:
                            hot.pop(pc, None)
                            self._promote(pc)
                            continue
                        hot[pc] = count
                op = cache_get(pc)
                if op is None:
                    op = decode_pc(pc)
                if translate:
                    prev_k = op[0]
                if profiling:
                    if pending:
                        bucket = buckets_get(last_pc)
                        if bucket is None:
                            bucket = new_bucket(last_pc)
                        bucket[0] += cycles - last_cycles
                        bucket[1] += 1
                    last_pc = pc
                    last_cycles = cycles
                    pending = True
                k = op[0]
                if timed:
                    cycles += timing.fetch(pc)
                    if pending_rd and pending_rd in op[6]:
                        cycles += timing.hazard_cycles(pending_is_load)
                if k < 14:  # simple ALU + precomputed constants
                    if k == _K_ADDI:
                        v = regs[op[2]] + op[3]
                    elif k == _K_ADD:
                        v = regs[op[2]] + regs[op[3]]
                    elif k == _K_ANDI:
                        v = regs[op[2]] & op[3]
                    elif k == _K_AND:
                        v = regs[op[2]] & regs[op[3]]
                    elif k == _K_ORI:
                        v = regs[op[2]] | op[3]
                    elif k == _K_OR:
                        v = regs[op[2]] | regs[op[3]]
                    elif k == _K_XORI:
                        v = regs[op[2]] ^ op[3]
                    elif k == _K_XOR:
                        v = regs[op[2]] ^ regs[op[3]]
                    elif k == _K_SUB:
                        v = regs[op[2]] - regs[op[3]]
                    elif k == _K_CONST:
                        v = op[3]
                    elif k == _K_SLTIU:
                        v = 1 if regs[op[2]] < op[3] else 0
                    elif k == _K_SLTU:
                        v = 1 if regs[op[2]] < regs[op[3]] else 0
                    elif k == _K_SLTI:
                        r = regs[op[2]]
                        v = 1 if (r - (1 << 32) if r & 0x80000000 else r) < op[3] else 0
                    else:  # _K_SLT
                        r = regs[op[2]]
                        s = regs[op[3]]
                        v = 1 if ((r - (1 << 32) if r & 0x80000000 else r)
                                  < (s - (1 << 32) if s & 0x80000000 else s)) else 0
                    rd = op[1]
                    if rd:
                        regs[rd] = v & M
                    if timed:
                        pending_rd = 0 if k == _K_CONST else rd
                        pending_is_load = False
                    cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                if k < 37:  # shifts, mul/div, loads
                    rd = op[1]
                    if k < 20:  # shifts
                        if k < 17:
                            shamt = op[3]
                        else:
                            shamt = regs[op[3]] & 0x1F
                        r = regs[op[2]]
                        if k == _K_SLLI or k == _K_SLL:
                            v = r << shamt
                        elif k == _K_SRLI or k == _K_SRL:
                            v = r >> shamt
                        else:  # srai/sra
                            v = (r - (1 << 32) if r & 0x80000000 else r) >> shamt
                        if rd:
                            regs[rd] = v & M
                        if timed:
                            cycles += timing.shift_cycles(shamt)
                            pending_rd = rd
                            pending_is_load = False
                        else:
                            cycles += 1
                    elif k < 32:  # mul/div
                        v = _muldiv_kind(k, regs[op[2]], regs[op[3]])
                        if rd:
                            regs[rd] = v & M
                        if timed:
                            cycles += (timing.mul_cycles() if k < 24
                                       else timing.div_cycles())
                            pending_rd = rd
                            pending_is_load = False
                        else:
                            cycles += 1
                    else:  # loads
                        addr = (regs[op[2]] + op[3]) & M
                        if k == _K_LW:
                            if check_align and addr & 3:
                                raise MemoryAccessError(
                                    f"misaligned 4-byte access at 0x{addr:08x}"
                                    f" (pc=0x{pc:08x})")
                            v = read32(addr)
                        elif k == _K_LBU:
                            v = read8(addr)
                        elif k == _K_LB:
                            v = read8(addr)
                            if v & 0x80:
                                v -= 256
                        elif k == _K_LHU:
                            if check_align and addr & 1:
                                raise MemoryAccessError(
                                    f"misaligned 2-byte access at 0x{addr:08x}"
                                    f" (pc=0x{pc:08x})")
                            v = read16(addr)
                        else:  # _K_LH
                            if check_align and addr & 1:
                                raise MemoryAccessError(
                                    f"misaligned 2-byte access at 0x{addr:08x}"
                                    f" (pc=0x{pc:08x})")
                            v = read16(addr)
                            if v & 0x8000:
                                v -= 65536
                        if rd:
                            regs[rd] = v & M
                        if timed:
                            cycles += timing.load_cycles(addr)
                            pending_rd = rd
                            pending_is_load = True
                        else:
                            cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                if k < 64:  # stores
                    addr = (regs[op[1]] + op[3]) & M
                    v = regs[op[2]]
                    if k == _K_SW:
                        if check_align and addr & 3:
                            raise MemoryAccessError(
                                f"misaligned 4-byte access at 0x{addr:08x}"
                                f" (pc=0x{pc:08x})")
                        write32(addr, v)
                        span = 3
                    elif k == _K_SB:
                        write8(addr, v)
                        span = 0
                    else:  # _K_SH
                        if check_align and addr & 1:
                            raise MemoryAccessError(
                                f"misaligned 2-byte access at 0x{addr:08x}"
                                f" (pc=0x{pc:08x})")
                        write16(addr, v)
                        span = 1
                    page = addr >> _PAGE_BITS
                    if page in cache_pages:
                        self._invalidate_page(page)
                    if page in block_pages:
                        self._invalidate_block_page(page)
                    last = (addr + span) >> _PAGE_BITS
                    if last != page:
                        if last in cache_pages:
                            self._invalidate_page(last)
                        if last in block_pages:
                            self._invalidate_block_page(last)
                    if timed:
                        cycles += timing.store_cycles(addr)
                        pending_rd = 0
                        pending_is_load = False
                    else:
                        cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                if k < 80:  # branches
                    a = regs[op[1]]
                    b = regs[op[2]]
                    if k == _K_BNE:
                        taken = a != b
                    elif k == _K_BEQ:
                        taken = a == b
                    elif k == _K_BLTU:
                        taken = a < b
                    elif k == _K_BGEU:
                        taken = a >= b
                    else:
                        sa = a - (1 << 32) if a & 0x80000000 else a
                        sb = b - (1 << 32) if b & 0x80000000 else b
                        taken = sa < sb if k == _K_BLT else sa >= sb
                    if timed:
                        cycles += 1 + timing.branch_penalty(pc, taken, op[4])
                        pending_rd = 0
                        pending_is_load = False
                    else:
                        cycles += 1
                    pc = op[3] if taken else pc + 4
                    instret += 1
                    executed += 1
                    continue
                if k == _K_JAL:
                    rd = op[1]
                    if rd:
                        regs[rd] = op[2]
                    if timed:
                        cycles += 1 + timing.jump_penalty(direct=True)
                        pending_rd = 0
                        pending_is_load = False
                    else:
                        cycles += 1
                    pc = op[3]
                    instret += 1
                    executed += 1
                    continue
                if k == _K_JALR:
                    target = (regs[op[2]] + op[3]) & ~1 & M
                    rd = op[1]
                    if rd:
                        regs[rd] = op[4]
                    if timed:
                        cycles += 1 + timing.jump_penalty(direct=False)
                        pending_rd = 0
                        pending_is_load = False
                    else:
                        cycles += 1
                    pc = target
                    instret += 1
                    executed += 1
                    continue
                if k == _K_CFU:
                    if cfu is None:
                        raise RuntimeError(
                            f"CFU instruction at pc=0x{pc:08x} but no CFU attached"
                        )
                    f3, f7 = op[4]
                    result, latency = cfu.execute(f3, f7, regs[op[2]], regs[op[3]])
                    rd = op[1]
                    if rd:
                        regs[rd] = result & M
                    if timed:
                        cycles += 1 + max(0, latency - 1)
                        pending_rd = rd
                        pending_is_load = False
                    else:
                        cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                if k == _K_EBREAK:
                    self.halted = True
                    halted = True
                    if timed:
                        pending_rd = 0
                        pending_is_load = False
                    cycles += 1
                    instret += 1
                    executed += 1
                    continue
                if k == _K_ECALL:
                    # The handler may inspect machine state: sync first.
                    self.pc = pc
                    self.instret = instret
                    self.cycles = cycles
                    self._pending_rd = pending_rd
                    self._pending_is_load = pending_is_load
                    pc = self.ecall_handler(pc + 4)
                    halted = self.halted
                    if timed:
                        pending_rd = 0
                        pending_is_load = False
                    cycles += 1
                    instret += 1
                    executed += 1
                    continue
                if k == _K_CSR:
                    csr = op[3]
                    if csr == 0xB00 or csr == 0xC00:
                        v = cycles
                    elif csr == 0xC02 or csr == 0xB02:
                        v = instret
                    else:
                        v = 0
                    rd = op[1]
                    if rd:
                        regs[rd] = v & M
                    if timed:
                        pending_rd = 0
                        pending_is_load = False
                    cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                if k == _K_FENCE:
                    if timed:
                        pending_rd = 0
                        pending_is_load = False
                    cycles += 1
                    pc += 4
                    instret += 1
                    executed += 1
                    continue
                raise RuntimeError(op[3])  # _K_RAISE
            # Attribute the final instruction.  This sits inside the
            # try (not the finally) on purpose: a faulting instruction
            # never reaches here, matching the reference profiler where
            # a raising step() is not attributed either.
            if profiling and pending:
                bucket = buckets_get(last_pc)
                if bucket is None:
                    bucket = new_bucket(last_pc)
                bucket[0] += cycles - last_cycles
                bucket[1] += 1
        except BaseException:
            if translate and fault_box[2] >= 0:
                # The fault happened inside a generated block, which
                # left the committed-so-far state in the fault box.
                pc = fault_box[0]
                cycles = fault_box[1]
                instret += fault_box[2]
                fault_box[2] = -1
            # step() clears the hazard bookkeeping before dispatch, so a
            # faulting instruction leaves no pending writeback behind.
            pending_rd = 0
            pending_is_load = False
            raise
        finally:
            self.pc = pc
            self.instret = instret
            self.cycles = cycles
            self._pending_rd = pending_rd
            self._pending_is_load = pending_is_load
        return executed

    def step(self):
        if self.halted:
            return
        word = self.memory.read32(self.pc)
        ins = isa.decode(word)
        if self.timing is not None:
            self.cycles += self.timing.fetch(self.pc)
            self.cycles += self._hazard_stall(ins)
        next_pc = self.pc + 4
        cycles = 1
        self._pending_rd = 0
        self._pending_is_load = False

        op = ins.opcode
        rs1 = self.regs[ins.rs1]
        rs2 = self.regs[ins.rs2]

        if op == isa.OPCODE_OP_IMM:
            cycles += self._alu_imm(ins, rs1)
        elif op == isa.OPCODE_OP:
            cycles += self._alu_reg(ins, rs1, rs2)
        elif op == isa.OPCODE_LUI:
            self.set_reg(ins.rd, ins.imm)
        elif op == isa.OPCODE_AUIPC:
            self.set_reg(ins.rd, self.pc + ins.imm)
        elif op == isa.OPCODE_JAL:
            self.set_reg(ins.rd, self.pc + 4)
            next_pc = (self.pc + ins.imm) & _MASK32
            if self.timing is not None:
                cycles += self.timing.jump_penalty(direct=True)
        elif op == isa.OPCODE_JALR:
            target = (rs1 + ins.imm) & ~1 & _MASK32
            self.set_reg(ins.rd, self.pc + 4)
            next_pc = target
            if self.timing is not None:
                cycles += self.timing.jump_penalty(direct=False)
        elif op == isa.OPCODE_BRANCH:
            taken = self._branch_taken(ins, rs1, rs2)
            if taken:
                next_pc = (self.pc + ins.imm) & _MASK32
            if self.timing is not None:
                cycles += self.timing.branch_penalty(self.pc, taken, ins.imm < 0)
        elif op == isa.OPCODE_LOAD:
            cycles += self._load(ins, rs1)
        elif op == isa.OPCODE_STORE:
            cycles += self._store(ins, rs1, rs2)
        elif op == OPCODE_CUSTOM0:
            cycles += self._cfu_op(ins, rs1, rs2)
        elif op == isa.OPCODE_SYSTEM:
            next_pc = self._system(ins, next_pc)
        elif op == isa.OPCODE_MISC_MEM:
            pass  # fence: no-op on an in-order single hart
        else:
            raise RuntimeError(f"illegal instruction 0x{word:08x} at pc=0x{self.pc:08x}")

        self.pc = next_pc
        self.instret += 1
        if self.timing is None:
            self.cycles += 1
        else:
            self.cycles += cycles

    # --- instruction groups ----------------------------------------------------------
    def _alu_imm(self, ins, rs1):
        extra = 0
        f3 = ins.funct3
        if f3 == 0:
            result = rs1 + ins.imm
        elif f3 == 2:
            result = int(_sext32(rs1) < ins.imm)
        elif f3 == 3:
            result = int(rs1 < (ins.imm & _MASK32))
        elif f3 == 4:
            result = rs1 ^ ins.imm
        elif f3 == 6:
            result = rs1 | ins.imm
        elif f3 == 7:
            result = rs1 & ins.imm
        elif f3 == 1:
            shamt = ins.imm & 0x1F
            result = rs1 << shamt
            extra = self._shift_cost(shamt)
        elif f3 == 5:
            shamt = ins.imm & 0x1F
            if ins.funct7 & 0x20:
                result = _sext32(rs1) >> shamt
            else:
                result = rs1 >> shamt
            extra = self._shift_cost(shamt)
        else:
            raise RuntimeError("bad OP-IMM funct3")
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return extra

    def _alu_reg(self, ins, rs1, rs2):
        extra = 0
        f3, f7 = ins.funct3, ins.funct7
        if f7 == 0x01:  # M extension
            result, extra = self._muldiv(f3, rs1, rs2)
        elif f3 == 0:
            result = rs1 - rs2 if f7 & 0x20 else rs1 + rs2
        elif f3 == 1:
            result = rs1 << (rs2 & 0x1F)
            extra = self._shift_cost(rs2 & 0x1F)
        elif f3 == 2:
            result = int(_sext32(rs1) < _sext32(rs2))
        elif f3 == 3:
            result = int(rs1 < rs2)
        elif f3 == 4:
            result = rs1 ^ rs2
        elif f3 == 5:
            shamt = rs2 & 0x1F
            result = _sext32(rs1) >> shamt if f7 & 0x20 else rs1 >> shamt
            extra = self._shift_cost(shamt)
        elif f3 == 6:
            result = rs1 | rs2
        elif f3 == 7:
            result = rs1 & rs2
        else:
            raise RuntimeError("bad OP funct3")
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return extra

    def _muldiv(self, f3, rs1, rs2):
        s1, s2 = _sext32(rs1), _sext32(rs2)
        if f3 == 0:
            result = s1 * s2
            extra = self._mul_cost()
        elif f3 == 1:
            result = (s1 * s2) >> 32
            extra = self._mul_cost()
        elif f3 == 2:
            result = (s1 * rs2) >> 32
            extra = self._mul_cost()
        elif f3 == 3:
            result = (rs1 * rs2) >> 32
            extra = self._mul_cost()
        elif f3 == 4:
            result = -1 if s2 == 0 else _div_trunc(s1, s2)
            extra = self._div_cost()
        elif f3 == 5:
            result = _MASK32 if rs2 == 0 else rs1 // rs2
            extra = self._div_cost()
        elif f3 == 6:
            result = s1 if s2 == 0 else s1 - _div_trunc(s1, s2) * s2
            extra = self._div_cost()
        else:
            result = rs1 if rs2 == 0 else rs1 % rs2
            extra = self._div_cost()
        return result, extra

    def _mul_cost(self):
        return self.timing.mul_cycles() - 1 if self.timing else 0

    def _div_cost(self):
        return self.timing.div_cycles() - 1 if self.timing else 0

    def _shift_cost(self, shamt):
        return self.timing.shift_cycles(shamt) - 1 if self.timing else 0

    def _branch_taken(self, ins, rs1, rs2):
        f3 = ins.funct3
        if f3 == 0:
            return rs1 == rs2
        if f3 == 1:
            return rs1 != rs2
        if f3 == 4:
            return _sext32(rs1) < _sext32(rs2)
        if f3 == 5:
            return _sext32(rs1) >= _sext32(rs2)
        if f3 == 6:
            return rs1 < rs2
        if f3 == 7:
            return rs1 >= rs2
        raise RuntimeError("bad branch funct3")

    def _load(self, ins, rs1):
        addr = (rs1 + ins.imm) & _MASK32
        f3 = ins.funct3
        if f3 == 0:
            value = _sext8(self.memory.read8(addr))
        elif f3 == 1:
            self._check_align(addr, 2)
            value = _sext16(self.memory.read16(addr))
        elif f3 == 2:
            self._check_align(addr, 4)
            value = self.memory.read32(addr)
        elif f3 == 4:
            value = self.memory.read8(addr)
        elif f3 == 5:
            self._check_align(addr, 2)
            value = self.memory.read16(addr)
        else:
            raise RuntimeError("bad load funct3")
        self.set_reg(ins.rd, value)
        self._pending_rd = ins.rd
        self._pending_is_load = True
        if self.timing is not None:
            return self.timing.load_cycles(addr) - 1
        return 0

    def _store(self, ins, rs1, rs2):
        addr = (rs1 + ins.imm) & _MASK32
        f3 = ins.funct3
        if f3 == 0:
            self.memory.write8(addr, rs2)
            span = 0
        elif f3 == 1:
            self._check_align(addr, 2)
            self.memory.write16(addr, rs2)
            span = 1
        elif f3 == 2:
            self._check_align(addr, 4)
            self.memory.write32(addr, rs2)
            span = 3
        else:
            raise RuntimeError("bad store funct3")
        self._invalidate_store(addr, span)
        if self.timing is not None:
            return self.timing.store_cycles(addr) - 1
        return 0

    def _cfu_op(self, ins, rs1, rs2):
        if self.cfu is None:
            raise RuntimeError(
                f"CFU instruction at pc=0x{self.pc:08x} but no CFU attached"
            )
        result, latency = self.cfu.execute(ins.funct3, ins.funct7, rs1, rs2)
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return max(0, latency - 1)

    def _system(self, ins, next_pc):
        if ins.raw == 0x00100073:  # ebreak
            self.halted = True
            return self.pc
        if ins.raw == 0x00000073:  # ecall
            return self.ecall_handler(next_pc)
        csr = ins.imm & 0xFFF
        if ins.funct3 in (1, 2, 3):  # csrrw/csrrs/csrrc
            value = {0xB00: self.cycles, 0xC00: self.cycles,
                     0xC02: self.instret, 0xB02: self.instret}.get(csr, 0)
            self.set_reg(ins.rd, value)
            return next_pc
        raise RuntimeError(f"unsupported SYSTEM instruction 0x{ins.raw:08x}")

    def _default_ecall(self, next_pc):
        if self.regs[17] == 93:  # exit
            self.exit_code = _sext32(self.regs[10])
            self.halted = True
            return self.pc
        self.halted = True
        self.exit_code = _sext32(self.regs[10])
        return self.pc

    def _check_align(self, addr, size):
        if self.timing is not None and not self.timing.checks_alignment():
            return  # hardware error checking removed: silently allow
        if addr % size:
            raise MemoryAccessError(
                f"misaligned {size}-byte access at 0x{addr:08x} (pc=0x{self.pc:08x})"
            )

    def _hazard_stall(self, ins):
        """Read-after-write interlock cost for the incoming instruction."""
        if not self._pending_rd:
            return 0
        reads = set()
        if ins.opcode not in (isa.OPCODE_LUI, isa.OPCODE_AUIPC, isa.OPCODE_JAL):
            reads.add(ins.rs1)
        if ins.opcode in (isa.OPCODE_OP, isa.OPCODE_BRANCH, isa.OPCODE_STORE,
                          OPCODE_CUSTOM0):
            reads.add(ins.rs2)
        if self._pending_rd not in reads:
            return 0
        return self.timing.hazard_cycles(self._pending_is_load)


def _sext8(value):
    return value - 256 if value & 0x80 else value


def _sext16(value):
    return value - 65536 if value & 0x8000 else value


def _div_trunc(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q
