"""Executable RV32IM machine: the instruction-set simulator.

This is the functional CPU model (the VexRiscv stand-in).  It executes
real encoded instructions against a byte-addressed memory, optionally
attached to a CFU (any object with ``execute(funct3, funct7, a, b) ->
(result, cycles)``) and a timing model (:mod:`repro.cpu.timing`), in
which case it also accumulates a cycle count.

The machine halts on ``ebreak``; ``ecall`` invokes a pluggable handler
(default: treat ``a7 == 93`` as exit-with-code-in-``a0``, anything else
halts too).
"""

from __future__ import annotations

from . import isa
from .isa import OPCODE_CUSTOM0

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_MASK32 = 0xFFFFFFFF


def _sext32(value):
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


class MemoryAccessError(RuntimeError):
    pass


class SparseMemory:
    """Byte-addressable sparse memory over 4 KiB pages (little endian)."""

    def __init__(self):
        self._pages = {}

    def _page(self, addr):
        index = addr >> _PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[index] = page
        return page

    def load_bytes(self, addr, data):
        for i, byte in enumerate(data):
            self.write8(addr + i, byte)

    def read_bytes(self, addr, length):
        return bytes(self.read8(addr + i) for i in range(length))

    def read8(self, addr):
        return self._page(addr)[addr & (_PAGE_SIZE - 1)]

    def write8(self, addr, value):
        self._page(addr)[addr & (_PAGE_SIZE - 1)] = value & 0xFF

    def read16(self, addr):
        return self.read8(addr) | self.read8(addr + 1) << 8

    def write16(self, addr, value):
        self.write8(addr, value)
        self.write8(addr + 1, value >> 8)

    def read32(self, addr):
        page = self._page(addr)
        offset = addr & (_PAGE_SIZE - 1)
        if offset <= _PAGE_SIZE - 4:
            return int.from_bytes(page[offset:offset + 4], "little")
        return self.read16(addr) | self.read16(addr + 2) << 16

    def write32(self, addr, value):
        page = self._page(addr)
        offset = addr & (_PAGE_SIZE - 1)
        if offset <= _PAGE_SIZE - 4:
            page[offset:offset + 4] = (value & _MASK32).to_bytes(4, "little")
        else:
            self.write16(addr, value)
            self.write16(addr + 2, value >> 16)


class Machine:
    """A single-hart RV32IM machine with optional CFU and timing model."""

    def __init__(self, memory=None, cfu=None, timing=None):
        self.memory = memory if memory is not None else SparseMemory()
        self.cfu = cfu
        self.timing = timing
        self.regs = [0] * 32
        self.pc = 0
        self.instret = 0
        self.cycles = 0
        self.halted = False
        self.exit_code = None
        self.ecall_handler = self._default_ecall
        # Hazard tracking for the timing model.
        self._pending_rd = 0
        self._pending_is_load = False

    # --- program loading -----------------------------------------------------------
    def load_program(self, code, addr=0):
        self.memory.load_bytes(addr, code)
        self.pc = addr

    def load_assembly(self, source, addr=0):
        from .assembler import assemble

        code, symbols = assemble(source, origin=addr)
        self.load_program(code, addr)
        return symbols

    # --- register helpers -------------------------------------------------------------
    def set_reg(self, index, value):
        if index:
            self.regs[index] = value & _MASK32

    def get_reg(self, index):
        return self.regs[index]

    # --- execution ------------------------------------------------------------------
    def run(self, max_instructions=1_000_000):
        """Execute until halt or the instruction budget is exhausted."""
        executed = 0
        while not self.halted and executed < max_instructions:
            self.step()
            executed += 1
        if not self.halted and executed >= max_instructions:
            raise RuntimeError(f"instruction budget exhausted at pc=0x{self.pc:08x}")
        return self.exit_code

    def step(self):
        if self.halted:
            return
        word = self.memory.read32(self.pc)
        ins = isa.decode(word)
        if self.timing is not None:
            self.cycles += self.timing.fetch(self.pc)
            self.cycles += self._hazard_stall(ins)
        next_pc = self.pc + 4
        cycles = 1
        self._pending_rd = 0
        self._pending_is_load = False

        op = ins.opcode
        rs1 = self.regs[ins.rs1]
        rs2 = self.regs[ins.rs2]

        if op == isa.OPCODE_OP_IMM:
            cycles += self._alu_imm(ins, rs1)
        elif op == isa.OPCODE_OP:
            cycles += self._alu_reg(ins, rs1, rs2)
        elif op == isa.OPCODE_LUI:
            self.set_reg(ins.rd, ins.imm)
        elif op == isa.OPCODE_AUIPC:
            self.set_reg(ins.rd, self.pc + ins.imm)
        elif op == isa.OPCODE_JAL:
            self.set_reg(ins.rd, self.pc + 4)
            next_pc = (self.pc + ins.imm) & _MASK32
            if self.timing is not None:
                cycles += self.timing.jump_penalty(direct=True)
        elif op == isa.OPCODE_JALR:
            target = (rs1 + ins.imm) & ~1 & _MASK32
            self.set_reg(ins.rd, self.pc + 4)
            next_pc = target
            if self.timing is not None:
                cycles += self.timing.jump_penalty(direct=False)
        elif op == isa.OPCODE_BRANCH:
            taken = self._branch_taken(ins, rs1, rs2)
            if taken:
                next_pc = (self.pc + ins.imm) & _MASK32
            if self.timing is not None:
                cycles += self.timing.branch_penalty(self.pc, taken, ins.imm < 0)
        elif op == isa.OPCODE_LOAD:
            cycles += self._load(ins, rs1)
        elif op == isa.OPCODE_STORE:
            cycles += self._store(ins, rs1, rs2)
        elif op == OPCODE_CUSTOM0:
            cycles += self._cfu_op(ins, rs1, rs2)
        elif op == isa.OPCODE_SYSTEM:
            next_pc = self._system(ins, next_pc)
        elif op == isa.OPCODE_MISC_MEM:
            pass  # fence: no-op on an in-order single hart
        else:
            raise RuntimeError(f"illegal instruction 0x{word:08x} at pc=0x{self.pc:08x}")

        self.pc = next_pc
        self.instret += 1
        if self.timing is None:
            self.cycles += 1
        else:
            self.cycles += cycles

    # --- instruction groups ----------------------------------------------------------
    def _alu_imm(self, ins, rs1):
        extra = 0
        f3 = ins.funct3
        if f3 == 0:
            result = rs1 + ins.imm
        elif f3 == 2:
            result = int(_sext32(rs1) < ins.imm)
        elif f3 == 3:
            result = int(rs1 < (ins.imm & _MASK32))
        elif f3 == 4:
            result = rs1 ^ ins.imm
        elif f3 == 6:
            result = rs1 | ins.imm
        elif f3 == 7:
            result = rs1 & ins.imm
        elif f3 == 1:
            shamt = ins.imm & 0x1F
            result = rs1 << shamt
            extra = self._shift_cost(shamt)
        elif f3 == 5:
            shamt = ins.imm & 0x1F
            if ins.funct7 & 0x20:
                result = _sext32(rs1) >> shamt
            else:
                result = rs1 >> shamt
            extra = self._shift_cost(shamt)
        else:
            raise RuntimeError("bad OP-IMM funct3")
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return extra

    def _alu_reg(self, ins, rs1, rs2):
        extra = 0
        f3, f7 = ins.funct3, ins.funct7
        if f7 == 0x01:  # M extension
            result, extra = self._muldiv(f3, rs1, rs2)
        elif f3 == 0:
            result = rs1 - rs2 if f7 & 0x20 else rs1 + rs2
        elif f3 == 1:
            result = rs1 << (rs2 & 0x1F)
            extra = self._shift_cost(rs2 & 0x1F)
        elif f3 == 2:
            result = int(_sext32(rs1) < _sext32(rs2))
        elif f3 == 3:
            result = int(rs1 < rs2)
        elif f3 == 4:
            result = rs1 ^ rs2
        elif f3 == 5:
            shamt = rs2 & 0x1F
            result = _sext32(rs1) >> shamt if f7 & 0x20 else rs1 >> shamt
            extra = self._shift_cost(shamt)
        elif f3 == 6:
            result = rs1 | rs2
        elif f3 == 7:
            result = rs1 & rs2
        else:
            raise RuntimeError("bad OP funct3")
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return extra

    def _muldiv(self, f3, rs1, rs2):
        s1, s2 = _sext32(rs1), _sext32(rs2)
        if f3 == 0:
            result = s1 * s2
            extra = self._mul_cost()
        elif f3 == 1:
            result = (s1 * s2) >> 32
            extra = self._mul_cost()
        elif f3 == 2:
            result = (s1 * rs2) >> 32
            extra = self._mul_cost()
        elif f3 == 3:
            result = (rs1 * rs2) >> 32
            extra = self._mul_cost()
        elif f3 == 4:
            result = -1 if s2 == 0 else _div_trunc(s1, s2)
            extra = self._div_cost()
        elif f3 == 5:
            result = _MASK32 if rs2 == 0 else rs1 // rs2
            extra = self._div_cost()
        elif f3 == 6:
            result = s1 if s2 == 0 else s1 - _div_trunc(s1, s2) * s2
            extra = self._div_cost()
        else:
            result = rs1 if rs2 == 0 else rs1 % rs2
            extra = self._div_cost()
        return result, extra

    def _mul_cost(self):
        return self.timing.mul_cycles() - 1 if self.timing else 0

    def _div_cost(self):
        return self.timing.div_cycles() - 1 if self.timing else 0

    def _shift_cost(self, shamt):
        return self.timing.shift_cycles(shamt) - 1 if self.timing else 0

    def _branch_taken(self, ins, rs1, rs2):
        f3 = ins.funct3
        if f3 == 0:
            return rs1 == rs2
        if f3 == 1:
            return rs1 != rs2
        if f3 == 4:
            return _sext32(rs1) < _sext32(rs2)
        if f3 == 5:
            return _sext32(rs1) >= _sext32(rs2)
        if f3 == 6:
            return rs1 < rs2
        if f3 == 7:
            return rs1 >= rs2
        raise RuntimeError("bad branch funct3")

    def _load(self, ins, rs1):
        addr = (rs1 + ins.imm) & _MASK32
        f3 = ins.funct3
        if f3 == 0:
            value = _sext8(self.memory.read8(addr))
        elif f3 == 1:
            self._check_align(addr, 2)
            value = _sext16(self.memory.read16(addr))
        elif f3 == 2:
            self._check_align(addr, 4)
            value = self.memory.read32(addr)
        elif f3 == 4:
            value = self.memory.read8(addr)
        elif f3 == 5:
            self._check_align(addr, 2)
            value = self.memory.read16(addr)
        else:
            raise RuntimeError("bad load funct3")
        self.set_reg(ins.rd, value)
        self._pending_rd = ins.rd
        self._pending_is_load = True
        if self.timing is not None:
            return self.timing.load_cycles(addr) - 1
        return 0

    def _store(self, ins, rs1, rs2):
        addr = (rs1 + ins.imm) & _MASK32
        f3 = ins.funct3
        if f3 == 0:
            self.memory.write8(addr, rs2)
        elif f3 == 1:
            self._check_align(addr, 2)
            self.memory.write16(addr, rs2)
        elif f3 == 2:
            self._check_align(addr, 4)
            self.memory.write32(addr, rs2)
        else:
            raise RuntimeError("bad store funct3")
        if self.timing is not None:
            return self.timing.store_cycles(addr) - 1
        return 0

    def _cfu_op(self, ins, rs1, rs2):
        if self.cfu is None:
            raise RuntimeError(
                f"CFU instruction at pc=0x{self.pc:08x} but no CFU attached"
            )
        result, latency = self.cfu.execute(ins.funct3, ins.funct7, rs1, rs2)
        self.set_reg(ins.rd, result)
        self._pending_rd = ins.rd
        return max(0, latency - 1)

    def _system(self, ins, next_pc):
        if ins.raw == 0x00100073:  # ebreak
            self.halted = True
            return self.pc
        if ins.raw == 0x00000073:  # ecall
            return self.ecall_handler(next_pc)
        csr = ins.imm & 0xFFF
        if ins.funct3 in (1, 2, 3):  # csrrw/csrrs/csrrc
            value = {0xB00: self.cycles, 0xC00: self.cycles,
                     0xC02: self.instret, 0xB02: self.instret}.get(csr, 0)
            self.set_reg(ins.rd, value)
            return next_pc
        raise RuntimeError(f"unsupported SYSTEM instruction 0x{ins.raw:08x}")

    def _default_ecall(self, next_pc):
        if self.regs[17] == 93:  # exit
            self.exit_code = _sext32(self.regs[10])
            self.halted = True
            return self.pc
        self.halted = True
        self.exit_code = _sext32(self.regs[10])
        return self.pc

    def _check_align(self, addr, size):
        if self.timing is not None and not self.timing.checks_alignment():
            return  # hardware error checking removed: silently allow
        if addr % size:
            raise MemoryAccessError(
                f"misaligned {size}-byte access at 0x{addr:08x} (pc=0x{self.pc:08x})"
            )

    def _hazard_stall(self, ins):
        """Read-after-write interlock cost for the incoming instruction."""
        if not self._pending_rd:
            return 0
        reads = set()
        if ins.opcode not in (isa.OPCODE_LUI, isa.OPCODE_AUIPC, isa.OPCODE_JAL):
            reads.add(ins.rs1)
        if ins.opcode in (isa.OPCODE_OP, isa.OPCODE_BRANCH, isa.OPCODE_STORE,
                          OPCODE_CUSTOM0):
            reads.add(ins.rs2)
        if self._pending_rd not in reads:
            return 0
        return self.timing.hazard_cycles(self._pending_is_load)


def _sext8(value):
    return value - 256 if value & 0x80 else value


def _sext16(value):
    return value - 65536 if value & 0x8000 else value


def _div_trunc(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q
