"""VexRiscv configuration space: the knobs the paper turns.

The paper never edits VexRiscv RTL — it selects plugins and parameters
(caches, branch prediction, multiplier/divider/shifter implementations,
bypassing, hardware error checking).  :class:`VexRiscvConfig` captures
exactly those knobs; :func:`cpu_resources` gives the logic-cell / DSP /
BRAM cost of a configuration (the quantity Vizier trades against CFU
resources in the Fig 7 design-space exploration).

Area coefficients are first-order estimates anchored on published
VexRiscv builds on iCE40/Artix parts; what matters for the reproduction
is their *relative* weight (e.g. a dynamic-target predictor costs more
than a static one, single-cycle multiply consumes DSP tiles, caches are
mostly block RAM plus a control overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..rtl.synth import ResourceReport

BRANCH_PREDICTORS = ("none", "static", "dynamic", "dynamic_target")
MULTIPLIERS = ("none", "iterative", "single_cycle")
DIVIDERS = ("none", "iterative")
SHIFTERS = ("iterative", "barrel")


@dataclass(frozen=True)
class VexRiscvConfig:
    """One point in the soft-CPU design space."""

    bypassing: bool = True
    branch_prediction: str = "dynamic"
    multiplier: str = "single_cycle"
    divider: str = "iterative"
    shifter: str = "barrel"
    icache_bytes: int = 4096
    icache_ways: int = 1
    dcache_bytes: int = 4096
    dcache_ways: int = 1
    hw_error_checking: bool = True
    mispredict_penalty: int = 3

    def __post_init__(self):
        if self.branch_prediction not in BRANCH_PREDICTORS:
            raise ValueError(f"bad branch predictor {self.branch_prediction!r}")
        if self.multiplier not in MULTIPLIERS:
            raise ValueError(f"bad multiplier {self.multiplier!r}")
        if self.divider not in DIVIDERS:
            raise ValueError(f"bad divider {self.divider!r}")
        if self.shifter not in SHIFTERS:
            raise ValueError(f"bad shifter {self.shifter!r}")
        for size in (self.icache_bytes, self.dcache_bytes):
            if size and (size & (size - 1)):
                raise ValueError("cache sizes must be powers of two (or 0)")

    def evolve(self, **changes):
        return replace(self, **changes)

    @property
    def has_icache(self):
        return self.icache_bytes > 0

    @property
    def has_dcache(self):
        return self.dcache_bytes > 0


#: The configuration the KWS study starts from: everything stripped to
#: squeeze onto Fomu (Section III-B "Profile").
FOMU_MINIMAL = VexRiscvConfig(
    bypassing=False,
    branch_prediction="none",
    multiplier="iterative",
    divider="none",          # division handled by software emulation
    shifter="iterative",
    icache_bytes=1024,
    dcache_bytes=0,
    hw_error_checking=False,
)

#: A comfortable Artix-7 configuration (the Arty image-classification study).
ARTY_DEFAULT = VexRiscvConfig(
    bypassing=True,
    branch_prediction="dynamic_target",
    multiplier="single_cycle",
    divider="iterative",
    shifter="barrel",
    icache_bytes=4096,
    dcache_bytes=4096,
)

# Logic-cell cost coefficients (LUT4-equivalent cells).
_BASE_CELLS = 1750            # 5-stage integer pipeline, regfile, decode
_BYPASS_CELLS = 300
_PREDICTOR_CELLS = {"none": 0, "static": 80, "dynamic": 230, "dynamic_target": 400}
_MUL_CELLS = {"none": 0, "iterative": 160, "single_cycle": 110}
_MUL_DSPS = {"none": 0, "iterative": 0, "single_cycle": 4}
_DIV_CELLS = {"none": 0, "iterative": 430}
_SHIFT_CELLS = {"iterative": 90, "barrel": 340}
_CACHE_CTRL_CELLS = 290       # per cache: tags compare, refill FSM
_ERROR_CHECK_CELLS = 230      # misaligned/illegal access checking


def cpu_resources(config):
    """Estimate the FPGA resources of a VexRiscv configuration."""
    luts = _BASE_CELLS
    luts += _BYPASS_CELLS if config.bypassing else 0
    luts += _PREDICTOR_CELLS[config.branch_prediction]
    luts += _MUL_CELLS[config.multiplier]
    luts += _DIV_CELLS[config.divider]
    luts += _SHIFT_CELLS[config.shifter]
    luts += _ERROR_CHECK_CELLS if config.hw_error_checking else 0
    ffs = luts // 3  # pipeline registers track combinational complexity
    bram_bits = 0
    for size, ways in ((config.icache_bytes, config.icache_ways),
                       (config.dcache_bytes, config.dcache_ways)):
        if size:
            luts += _CACHE_CTRL_CELLS + 40 * (ways - 1)
            bram_bits += size * 8            # data array
            bram_bits += (size // 32) * 22   # tag + valid per 32B line
    if config.branch_prediction == "dynamic":
        bram_bits += 128 * 2                 # 2-bit counter table
    if config.branch_prediction == "dynamic_target":
        bram_bits += 128 * 2 + 64 * 34       # counters + BTB
    return ResourceReport(
        luts=luts,
        ffs=ffs,
        dsps=_MUL_DSPS[config.multiplier],
        bram_bits=bram_bits,
    )
