"""RV32IM instruction set: encoding, decoding, and the CFU custom opcode.

The CFU instruction follows the RISC-V R-format on the *custom-0* major
opcode (0b0001011), exactly as CFU Playground encodes it: ``funct7`` and
``funct3`` select the CFU operation, ``rs1``/``rs2`` carry the operands,
``rd`` receives the 32-bit result.
"""

from __future__ import annotations

from dataclasses import dataclass

OPCODE_LUI = 0b0110111
OPCODE_AUIPC = 0b0010111
OPCODE_JAL = 0b1101111
OPCODE_JALR = 0b1100111
OPCODE_BRANCH = 0b1100011
OPCODE_LOAD = 0b0000011
OPCODE_STORE = 0b0100011
OPCODE_OP_IMM = 0b0010011
OPCODE_OP = 0b0110011
OPCODE_MISC_MEM = 0b0001111
OPCODE_SYSTEM = 0b1110011
OPCODE_CUSTOM0 = 0b0001011  # CFU instructions live here

ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}


def register_number(name):
    """Parse a register name (``x7``, ``a0``, ``sp``...) to its index."""
    name = name.strip().lower()
    if name in ABI_NAMES:
        return ABI_NAMES[name]
    if name.startswith("x"):
        num = int(name[1:])
        if 0 <= num < 32:
            return num
    raise ValueError(f"unknown register {name!r}")


def _check_range(value, bits, signed, what):
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not low <= value <= high:
        raise ValueError(f"{what} {value} out of range [{low}, {high}]")


# --- encoders -------------------------------------------------------------------

def encode_r(opcode, rd, funct3, rs1, rs2, funct7):
    return (
        (funct7 & 0x7F) << 25 | (rs2 & 0x1F) << 20 | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12 | (rd & 0x1F) << 7 | (opcode & 0x7F)
    )


def encode_i(opcode, rd, funct3, rs1, imm):
    _check_range(imm, 12, True, "I-immediate")
    return (
        (imm & 0xFFF) << 20 | (rs1 & 0x1F) << 15 | (funct3 & 0x7) << 12
        | (rd & 0x1F) << 7 | (opcode & 0x7F)
    )


def encode_s(opcode, funct3, rs1, rs2, imm):
    _check_range(imm, 12, True, "S-immediate")
    imm &= 0xFFF
    return (
        (imm >> 5) << 25 | (rs2 & 0x1F) << 20 | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12 | (imm & 0x1F) << 7 | (opcode & 0x7F)
    )


def encode_b(opcode, funct3, rs1, rs2, imm):
    _check_range(imm, 13, True, "B-immediate")
    if imm % 2:
        raise ValueError("branch offset must be even")
    imm &= 0x1FFF
    return (
        ((imm >> 12) & 1) << 31 | ((imm >> 5) & 0x3F) << 25
        | (rs2 & 0x1F) << 20 | (rs1 & 0x1F) << 15 | (funct3 & 0x7) << 12
        | ((imm >> 1) & 0xF) << 8 | ((imm >> 11) & 1) << 7 | (opcode & 0x7F)
    )


def encode_u(opcode, rd, imm):
    return (imm & 0xFFFFF) << 12 | (rd & 0x1F) << 7 | (opcode & 0x7F)


def encode_j(opcode, rd, imm):
    _check_range(imm, 21, True, "J-immediate")
    if imm % 2:
        raise ValueError("jump offset must be even")
    imm &= 0x1FFFFF
    return (
        ((imm >> 20) & 1) << 31 | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 1) << 20 | ((imm >> 12) & 0xFF) << 12
        | (rd & 0x1F) << 7 | (opcode & 0x7F)
    )


def encode_cfu(funct7, funct3, rd, rs1, rs2):
    """Encode a CFU custom instruction — the ``cfu_op`` macro's output."""
    return encode_r(OPCODE_CUSTOM0, rd, funct3, rs1, rs2, funct7)


# --- decoding -------------------------------------------------------------------

def _sext(value, bits):
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


@dataclass
class Instruction:
    """A decoded instruction with all fields extracted."""

    raw: int
    opcode: int
    rd: int
    rs1: int
    rs2: int
    funct3: int
    funct7: int
    imm: int  # sign-extended, format-appropriate

    def __str__(self):
        from .disasm import disassemble

        return disassemble(self.raw)


def decode(word):
    """Decode a 32-bit instruction word into an :class:`Instruction`."""
    word &= 0xFFFFFFFF
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode in (OPCODE_LUI, OPCODE_AUIPC):
        imm = _sext(word >> 12, 20) << 12
    elif opcode == OPCODE_JAL:
        imm = _sext(
            ((word >> 31) & 1) << 20
            | ((word >> 12) & 0xFF) << 12
            | ((word >> 20) & 1) << 11
            | ((word >> 21) & 0x3FF) << 1,
            21,
        )
    elif opcode == OPCODE_BRANCH:
        imm = _sext(
            ((word >> 31) & 1) << 12
            | ((word >> 7) & 1) << 11
            | ((word >> 25) & 0x3F) << 5
            | ((word >> 8) & 0xF) << 1,
            13,
        )
    elif opcode == OPCODE_STORE:
        imm = _sext(((word >> 25) & 0x7F) << 5 | ((word >> 7) & 0x1F), 12)
    else:  # I-format and friends
        imm = _sext(word >> 20, 12)

    return Instruction(
        raw=word, opcode=opcode, rd=rd, rs1=rs1, rs2=rs2,
        funct3=funct3, funct7=funct7, imm=imm,
    )


def is_cfu(instr):
    return instr.opcode == OPCODE_CUSTOM0
