"""Tier-2 basic-block translation for the ISA simulator.

The decoded-op dispatch loop (tier 1, :meth:`Machine._run_fast`) still
pays one Python dispatch per executed instruction.  This module removes
that cost for hot code: a basic block — the straight-line run of
instructions from an entry pc to the next branch/jump/system
instruction or code-page edge — is code-generated into one specialized
Python function, ``exec``'d once, and cached per entry pc.

What the generated function bakes in as literals:

- register reads/writes flattened to locals (one list load per register
  at entry, one store at exit),
- immediates, masks, and sign-extension constants,
- the timing model's configuration-pure costs (shift/mul/div cycles,
  jump penalties, hazard interlock costs, per-pair static RAW hazards
  inside the block) constant-folded into per-instruction literals, with
  only data-dependent costs (``fetch``/``load_cycles``/``store_cycles``
  cache state, branch-predictor outcomes, CFU latency) left as calls,
- plain-RAM page access: loads/stores index the backing ``bytearray``
  directly through the bus page cache, falling back to the memory
  object's slow path for misses, CSR windows, read-only regions, and
  straddles.  The resolved page (data, base, writability) is kept in
  locals across accesses, so streaming loops pay one dict probe per
  page switch instead of one per access.

When the timing model is the stock :class:`~repro.cpu.timing.VexTiming`
with stock :class:`~repro.perf.cache.Cache` /
:class:`~repro.cpu.timing.BranchPredictor` internals (exact-type
checks; duck-typed timing doubles keep the method-call path), three
data-dependent costs are inlined too:

- *fetch*: all block pcs share one memory region (checked at
  translation time).  With no icache (or an uncacheable region) the
  fetch cost is a region constant, folded away entirely.  With an
  icache, only the first instruction of each cache line pays a real
  ``fetch`` call; the rest of the line is a guaranteed MRU hit — no
  intervening icache access can evict it — so those fetches fold to a
  batched ``hits += k`` with zero cycles, flushed before any
  instruction that can fault so stats stay exact mid-block.
- *branch penalty*: the predictor's table index ``(pc >> 2) % size`` is
  a translation-time constant, so the 2-bit counter read/update and the
  penalty selection inline to a few integer ops ("none"/"static" kinds
  fold to two literals).
- *load/store cycles*: a page that lies entirely inside one memory
  region has constant miss/uncached costs, resolved lazily per page
  alongside the data-page locals.  With those baked, the entire stock
  dcache access — set index, LRU tag-list update, hit/miss stats, and
  the fill cost on a miss — inlines to integer ops; only pages that
  span regions keep the real call.  Self-loop blocks whose instruction
  lines map to distinct icache sets additionally hoist their real
  fetches to iteration 1: later iterations are guaranteed MRU hits.

CFU calls go through an optional ``fast_call(funct3, funct7)`` protocol
(:class:`~repro.cfu.interface.CfuModel`): a model may hand back a
single-latency bound callable for a fixed opcode pair, which the block
resolves once per invocation and uses instead of the generic
``execute`` tuple protocol.  Wrappers that must observe every
invocation (``MeteredCfu``) simply don't provide one.

Deviations from the obvious design, on purpose:

- CFU instructions do *not* terminate blocks.  The CFU call is emitted
  in-block (with the same no-CFU error and latency accounting as tier
  1); cutting blocks at CFU boundaries would halve block length on
  exactly the accelerator-bound workloads this tier exists for.
- Blocks whose terminator jumps back to their own entry pc loop
  *inside* the generated function under an instruction budget, so tight
  loops pay one call per many iterations, not per pass.

Correctness contract (held by ``tests/test_sim_differential.py``):
architectural state, cycle counts, fault state, and profiler
attribution are bit-identical to tier 1, which is itself bit-identical
to the reference ``step()`` loop.  Stores into a page invalidate that
page's blocks exactly like the decode cache; a store from *inside* a
block that invalidates any cached page finishes its own accounting and
returns to the dispatch loop immediately.
"""

from __future__ import annotations

import sys

from ..perf.cache import Cache
from .machine import (
    MemoryAccessError,
    SparseMemory,
    _muldiv_kind,
    _PAGE_BITS,
    _PAGE_SIZE,
)
from .timing import BranchPredictor, VexTiming
from . import machine as _m

#: Longest run of instructions folded into one block.
MAX_BLOCK = 128

_M32 = 0xFFFFFFFF

#: Aligned 4-byte accesses can go through a ``memoryview("I")`` of the
#: backing only when the host and the guest agree on byte order.
_LITTLE = sys.byteorder == "little"


def _mv_cast(buf):
    """A 32-bit word view of ``buf``, or None when it can't be cast
    (length not a multiple of 4).  Backings never resize, so holding
    the buffer export for the duration of one block call is safe."""
    try:
        return memoryview(buf).cast("I")
    except (TypeError, ValueError):
        return None


class BlockEntry:
    """One translated block: entry pc, instruction count, and the
    generated function (plus a lazily-compiled profiled variant).  A
    ``fn`` of ``None`` is a sentinel: translation was refused (or
    failed) at this pc and the dispatch loop must stay on tier 1."""

    __slots__ = ("pc", "length", "fn", "fn_prof", "source", "source_prof",
                 "_ops")

    def __init__(self, pc, length, fn, source, ops=None):
        self.pc = pc
        self.length = length
        self.fn = fn
        self.fn_prof = None
        self.source = source
        self.source_prof = None
        self._ops = ops

    def ensure_profiled(self, machine):
        """Compile (once) and return the attribution-instrumented
        variant of this block."""
        if self.fn_prof is None:
            self.source_prof, self.fn_prof = _compile(
                machine, self.pc, self._ops, profiled=True)
        return self.fn_prof


def _discover(machine, pc):
    """Collect the straight-line decoded ops starting at ``pc``.

    The run ends at (and includes) the first branch/jump, and ends
    *before* any system-class instruction (ebreak/ecall/csr/fence/
    illegal: they need live machine state or halt), before a MUL when
    the timing model has no multiplier (tier 1 raises mid-dispatch and
    the block would mis-count cycles first), and at the code-page edge
    so every block lives on exactly one invalidation page.
    """
    timed = machine.timing is not None
    mul_ok = True
    if timed:
        try:
            machine.timing.mul_cycles()
        except Exception:
            mul_ok = False
    page_end = ((pc >> _PAGE_BITS) + 1) << _PAGE_BITS
    cache_get = machine._decode_cache.get
    decode = machine._decode_pc
    ops = []
    p = pc
    while p + 4 <= page_end and len(ops) < MAX_BLOCK:
        op = cache_get(p)
        if op is None:
            try:
                op = decode(p)
            except Exception:
                break  # unreadable code memory: end the block here
        k = op[0]
        if k >= _m._K_EBREAK:
            break  # system/illegal: cut before, tier 1 handles it
        if timed and not mul_ok and _m._K_MUL <= k < _m._K_DIV:
            break  # tier 1 raises "no multiplier" on dispatch
        ops.append((p, op))
        if _m._K_BEQ <= k <= _m._K_JALR:
            break  # control transfer terminates the block
        p += 4
    return ops


def translate_block(machine, pc):
    """Translate the block at ``pc`` into a :class:`BlockEntry`.

    Never raises: any discovery or compilation failure returns a
    sentinel entry (``fn=None``) so ``auto`` falls back to tier 1 at
    this pc.
    """
    try:
        ops = _discover(machine, pc)
        if not ops:
            return BlockEntry(pc, 0, None, None)
        source, fn = _compile(machine, pc, ops, profiled=False)
        return BlockEntry(pc, len(ops), fn, source, ops)
    except Exception:
        return BlockEntry(pc, 0, None, None)


def _pending_after(op):
    """(pending_rd, pending_is_load) after ``op`` retires, exactly as
    the tier-1 timed loop tracks it."""
    k = op[0]
    if k == _m._K_CONST:
        return 0, False
    if k < 32 or k == _m._K_CFU:
        return op[1], False
    if k < 40:  # loads
        return op[1], True
    return 0, False  # stores, branches, jumps


def _mem_style(mem):
    """Memory access style for code generation.  Traffic accounting
    must observe every transaction, so it forces the slow (method-call)
    style; the dispatch loop flushes blocks when the flag flips."""
    if getattr(mem, "_traffic", None) is not None:
        return "slow"
    if getattr(mem, "_page_data", None) is not None:
        return "bus"
    if isinstance(mem, SparseMemory):
        return "sparse"
    return "slow"


def _build_resolver(machine):
    """The machine-level page resolver shared by every generated block:
    page index -> ``(data, base, writable, word view, cost mode, load
    cost, store cost)``, cached in ``machine._data_page_cache`` (whose
    identity blocks bake as ``_PGg``).  Only resolvable pages are
    cached, so a sparse page created later (or a CSR page) is re-probed
    on the next refresh.

    COW-protected pages resolve as non-writable: generated stores then
    fall back to the memory's write methods, which record the undo
    image and lift the protection (the memory evicts the page from this
    cache on every protection transition, so the next refresh sees it
    writable again).
    """
    mem = machine.memory
    timing = machine.timing
    timed = timing is not None
    style = _mem_style(mem)
    check_align = (not timed) or timing.checks_alignment()
    use_mv = check_align and _LITTLE
    pg = machine._data_page_cache
    protected = getattr(mem, "_cow_protected", ())
    if style == "bus":
        _bus_get = mem._page_data.get
    else:
        _sp_get = getattr(mem, "_pages", {}).get
    dcache = getattr(timing, "dcache", None)
    dc_ok = timed and _dc_inline_ok(timing, dcache)
    if dc_ok:
        _mm = timing.memory_map
        _lbytes = timing.line_bytes
        _costs = {}

        def _page_costs(page, _dcache=dcache):
            lo = page << _PAGE_BITS
            hi = lo + _PAGE_SIZE
            try:
                region = _mm.find(lo)
            except Exception:
                region = None
            if region is None or lo < region.base or region.end < hi:
                entry = (-1, 0, 0)  # page spans regions: keep the call
            elif _dcache is not None and region.cacheable:
                fill = 1 + region.tech.line_fill_cycles(_lbytes)
                entry = (1, fill, fill)
            else:
                entry = (0, region.tech.first_word_latency,
                         region.tech.write_latency)
            _costs[page] = entry
            return entry

    def _resolve_page(page):
        ld, lb, lw, mv = None, 0, False, None
        if style == "bus":
            ent = _bus_get(page)
            if ent is not None:
                ld, lb, lw = ent
        else:
            ld = _sp_get(page)
            lb = page << _PAGE_BITS
            lw = ld is not None
        if lw and page in protected:
            lw = False  # COW: route stores through the memory methods
        if use_mv and ld is not None and lb & 3 == 0:
            mv = _mv_cast(ld)
        if dc_ok:
            lc, lmc, lsc = _costs.get(page) or _page_costs(page)
        else:
            lc = lmc = lsc = 0
        out = (ld, lb, lw, mv, lc, lmc, lsc)
        if ld is not None:
            pg[page] = out
        return out

    return _resolve_page


def _ensure_resolver(machine):
    resolver = machine._page_resolver
    if resolver is None:
        resolver = _build_resolver(machine)
        machine._page_resolver = resolver
    return resolver


def _dc_inline_ok(timing, dcache):
    """Whether the stock-dcache data-access cost can be inlined (the
    resolver and the code generator must agree on this gate)."""
    tt = type(timing)
    return (tt.load_cycles is VexTiming.load_cycles
            and tt.store_cycles is VexTiming.store_cycles
            and tt._data_access is VexTiming._data_access
            and (dcache is None or type(dcache) is Cache))


#: Bumped whenever generated-source shape changes, so persistent cache
#: entries from an older code generator read as misses.
TRANSLATE_SCHEMA = 1


def _timing_key(timing):
    """The canonical (JSON-able via repr) timing configuration a block
    bakes in, or a refusal (None return means "don't cache"): only the
    stock VexTiming is canonicalizable — duck-typed timing doubles have
    no value identity."""
    if timing is None:
        return {"timing": None}
    if type(timing) is not VexTiming:
        return None
    return {
        "config": repr(timing.config),
        "regions": [repr(region) for region in timing.memory_map.regions],
        "line_bytes": timing.line_bytes,
    }


def _block_key(machine, entry_pc, ops, profiled):
    """The persistent-cache key for one block, or None when this
    machine configuration cannot be content-addressed."""
    timing_key = _timing_key(machine.timing)
    if timing_key is None:
        return None
    from ..core.codecache import code_key

    return code_key("tier2-block", {
        "schema": TRANSLATE_SCHEMA,
        "pc": entry_pc,
        # The instruction words come from the already-decoded ops (not
        # a fresh memory read, which would perturb traffic accounting).
        "code": [op[5].raw for _p, op in ops],
        "profiled": bool(profiled),
        "style": _mem_style(machine.memory),
        "byteorder": sys.byteorder,
        "timing": timing_key,
    })


def _candidate(machine, name, n_cfu):
    """Reconstruct one baked object for a generated block — everything
    a block closes over is derivable from the live machine, which is
    what makes cached *source* rebindable in any process."""
    mem = machine.memory
    timing = machine.timing
    if name == "_mr8":
        return mem.read8
    if name == "_mr16":
        return mem.read16
    if name == "_mr32":
        return mem.read32
    if name == "_mw8":
        return mem.write8
    if name == "_mw16":
        return mem.write16
    if name == "_mw32":
        return mem.write32
    if name == "_DP":
        return machine._decode_pages
    if name == "_BP":
        return machine._block_pages
    if name == "_SI":
        return machine._invalidate_store
    if name == "_F":
        return machine._block_fault
    if name == "_md":
        return _muldiv_kind
    if name == "_PGg":
        return machine._data_page_cache.get
    if name == "_RP":
        return _ensure_resolver(machine)
    if name == "_CC":
        return [object()] + [None] * (1 + n_cfu)
    if name == "_ft":
        return timing.fetch
    if name == "_ldc":
        return timing.load_cycles
    if name == "_stc":
        return timing.store_cycles
    if name == "_bp":
        return timing.branch_penalty
    if name == "_ic":
        return timing.icache
    if name == "_dc":
        return timing.dcache
    if name == "_dsets":
        return timing.dcache._sets
    if name == "_bpc":
        return timing.predictor._counters
    raise KeyError(f"unknown baked name {name!r}")


def _bind(machine, entry_pc, source, need, n_cfu):
    """``exec`` a block's generated source against this machine's live
    objects (the emit/bind split: emission is deterministic and cached;
    binding is per-machine and cheap)."""
    env = {name: _candidate(machine, name, n_cfu) for name in need}
    env["MemoryAccessError"] = MemoryAccessError
    exec(compile(source, f"<block@0x{entry_pc:08x}>", "exec"), env)
    return env["_block"]


def _compile(machine, entry_pc, ops, profiled):
    """Return ``(source, function)`` for one block, consulting the
    machine's persistent compile cache: on a hit the cached source is
    re-bound to this machine without running the code generator."""
    cache = machine.compile_cache
    key = _block_key(machine, entry_pc, ops, profiled) \
        if cache is not None else None
    if key is not None:
        from ..core.codecache import MISS

        hit = cache.get(key)
        if hit is not MISS:
            machine.block_cache_loads += 1
            return hit["source"], _bind(machine, entry_pc, hit["source"],
                                        hit["need"], hit["cfu_sites"])
    source, need, n_cfu = _emit(machine, entry_pc, ops, profiled)
    if key is not None:
        cache.put(key, {"source": source, "need": sorted(need),
                        "cfu_sites": n_cfu})
    return source, _bind(machine, entry_pc, source, sorted(need), n_cfu)


def _emit(machine, entry_pc, ops, profiled):
    """Generate one block's source; returns ``(source, need, n_cfu)``
    where ``need`` names the objects :func:`_bind` must supply."""
    timing = machine.timing
    timed = timing is not None
    mem = machine.memory
    style = _mem_style(mem)

    check_align = (not timed) or timing.checks_alignment()

    # Configuration-pure timing constants, baked at translation time.
    if timed:
        barrel = timing.shift_cycles(31) == 1
        try:
            mul_c = timing.mul_cycles()
        except Exception:
            mul_c = None  # _discover cut before any MUL
        div_c = timing.div_cycles()
        jal_c = 1 + timing.jump_penalty(direct=True)
        jalr_c = 1 + timing.jump_penalty(direct=False)
        hz_load = timing.hazard_cycles(True)
        hz_other = timing.hazard_cycles(False)

    n_ops = len(ops)
    last_pc, last_op = ops[-1]
    lk = last_op[0]
    if _m._K_BEQ <= lk <= _m._K_BGEU:
        term = "branch"
        loop = last_op[3] == entry_pc
    elif lk == _m._K_JAL:
        term = "jal"
        loop = last_op[3] == entry_pc
    elif lk == _m._K_JALR:
        term = "jalr"
        loop = False
    else:
        term = "fall"
        loop = False

    # --- timing-internals inlining gates ------------------------------------------
    # Only the stock VexTiming with stock Cache/BranchPredictor
    # internals qualifies (exact-type checks): a duck-typed or
    # subclassed timing double keeps the method-call path.
    ic_mode = "call"   # per-instruction fetch strategy: call|const|line
    fetch_const = 0
    ic_lb = 32
    bp_inline = False
    dc_inline = False
    predictor = None
    dcache = None
    if timed:
        tt = type(timing)
        region = None
        if tt.fetch is VexTiming.fetch:
            try:
                region = timing.memory_map.find(entry_pc)
                if timing.memory_map.find(last_pc) is not region:
                    region = None
            except Exception:
                region = None
        if region is not None:
            icache = timing.icache
            if icache is None or not region.cacheable:
                # fetch is a pure region constant: fold it away
                ic_mode = "const"
                fetch_const = region.tech.first_word_latency - 1
            elif type(icache) is Cache:
                ic_mode = "line"
                ic_lb = icache.line_bytes
        predictor = getattr(timing, "predictor", None)
        bp_inline = (tt.branch_penalty is VexTiming.branch_penalty
                     and type(predictor) is BranchPredictor)
        dcache = getattr(timing, "dcache", None)
        dc_ok = _dc_inline_ok(timing, dcache)

    # --- registers touched ------------------------------------------------------
    reads, writes = set(), set()

    def _touch(rs=(), rd=0):
        for r in rs:
            if r:
                reads.add(r)
        if rd:
            writes.add(rd)

    for _p, op in ops:
        k = op[0]
        if k == _m._K_CONST:
            _touch(rd=op[1])
        elif k <= 12 or 14 <= k < 17 or 32 <= k < 37:
            # imm-ALU, reg-ALU, imm shifts, loads: op[2] is rs1 (reg-ALU
            # also reads op[3])
            rs = (op[2], op[3]) if 6 <= k <= 12 else (op[2],)
            _touch(rs, op[1])
        elif 17 <= k < 28:  # reg shifts, mul/div
            _touch((op[2], op[3]), op[1])
        elif 40 <= k < 43:  # stores: op[1] base, op[2] src
            _touch((op[1], op[2]))
        elif 64 <= k < 70:  # branches
            _touch((op[1], op[2]))
        elif k == _m._K_JAL:
            _touch(rd=op[1])
        elif k == _m._K_JALR:
            _touch((op[2],), op[1])
        elif k == _m._K_CFU:
            _touch((op[2], op[3]), op[1])

    has_mem = any(32 <= op[0] < 43 for _p, op in ops)
    use_pcache = has_mem and style in ("bus", "sparse")
    cfu_sites = [i for i, (_p, op) in enumerate(ops)
                 if op[0] == _m._K_CFU]

    # Data-access cost inlining piggybacks on the page locals: a page
    # that lies entirely inside one region has translation-time-constant
    # miss/uncached costs, resolved lazily per page into a block-local
    # cache.  With that, the whole dcache simulation (LRU tag lists,
    # hit/miss stats, fill cost) inlines to a handful of integer ops.
    dc_inline = timed and dc_ok and use_pcache
    if dc_inline and dcache is not None:
        dlb, dns = dcache.line_bytes, dcache.num_sets
        dc_line = (f"_a >> {dlb.bit_length() - 1}"
                   if dlb & (dlb - 1) == 0 else f"_a // {dlb}")
        if dns & (dns - 1) == 0:
            dc_set = f"_ln & {dns - 1}"
            dc_tag = f"_ln >> {dns.bit_length() - 1}"
        else:
            dc_set, dc_tag = f"_ln % {dns}", f"_ln // {dns}"

    # A self-loop block owns the icache while it iterates in-function:
    # if its instruction lines all map to distinct sets, iteration 1's
    # real fetches leave every line most-recently-used, so fetches on
    # iterations >= 2 are guaranteed hits (and the MRU reorder is a
    # no-op) — they fold to ``hits += 1`` behind an ``_it`` test.
    loop_ic_hoist = False
    if loop and ic_mode == "line":
        block_lines = {p // ic_lb for p, _op in ops}
        ic_sets = {ln % timing.icache.num_sets for ln in block_lines}
        loop_ic_hoist = len(ic_sets) == len(block_lines)

    # Aligned word loads/stores go through a 32-bit memoryview of the
    # backing instead of four byte indexes (little-endian hosts only;
    # the alignment check above the access guarantees in-page, aligned
    # word offsets).
    use_mv = (use_pcache and check_align and _LITTLE
              and any(op[0] in (_m._K_LW, _m._K_SW) for _p, op in ops))

    # Page resolution is machine-level (see _build_resolver): every
    # block shares one resolver and one page cache, so the resolved
    # tuples — and the source that consumes them — are block-independent
    # and the generated source is cacheable across processes.

    # --- emission helpers -------------------------------------------------------
    need = set()
    out = []

    def L(indent, text):
        out.append("    " * indent + text)

    def R(n):
        return "0" if n == 0 else f"_r{n}"

    def sx(e):
        return f"({e} - 4294967296 if {e} & 2147483648 else {e})"

    def attr(ind, i):
        if not profiled:
            return
        if timed:
            L(ind, f"_bk{i}[0] += cycles - _c0")
        else:
            L(ind, f"_bk{i}[0] += 1")
        L(ind, f"_bk{i}[1] += 1")

    def addr_expr(base, imm):
        if base == 0:
            return str(imm & _M32)
        if imm == 0:
            return R(base)
        return f"({R(base)} + {imm}) & 4294967295"

    def misalign(ind, i, p, size, mask):
        if not check_align:
            return
        L(ind, f"if _a & {mask}:")
        if not timed:
            L(ind + 1, f"_fj = {i}")
        L(ind + 1, "raise MemoryAccessError("
                   f"\"misaligned {size}-byte access at 0x%08x (pc=0x%08x)\""
                   f" % (_a, {p}))")

    def slow_fj(ind, i):
        # Functional blocks only materialize the fault index on paths
        # that can actually raise; timed blocks set it per instruction.
        if not timed:
            L(ind, f"_fj = {i}")

    # Batched guaranteed icache hits (line mode): flushed before any
    # instruction that can fault, so mid-block stats are exact.
    ih_pending = [0]

    def flush_hits(ind):
        if ih_pending[0]:
            need.add("_ic")
            L(ind, f"_ic.hits += {ih_pending[0]}")
            ih_pending[0] = 0

    def refresh_page(ind, i, word, write):
        # Per-site page locals: each static load/store site keeps its
        # own resolved page, so a loop alternating two pages (memcpy:
        # src and dst) never re-resolves in steady state.  The resolved
        # tuples live across calls in the block-local page cache.
        need.update(("_PGg", "_RP"))
        L(ind, "_p = _a >> 12")
        L(ind, f"if _p != _lp{i}:")
        L(ind + 1, f"_lp{i} = _p")
        L(ind + 1, "_e = _PGg(_p)")
        L(ind + 1, "if _e is None:")
        L(ind + 2, "_e = _RP(_p)")
        L(ind + 1, f"_ld{i} = _e[0]")
        L(ind + 1, f"_lb{i} = _e[1]")
        if write:
            L(ind + 1, f"_lw{i} = _e[2]")
        if word:
            L(ind + 1, f"_mv{i} = _e[3]")
        if dc_inline:
            L(ind + 1, f"_lc{i} = _e[4]")
            L(ind + 1, f"_lmc{i} = _e[5]")
            L(ind + 1, f"_lsc{i} = _e[6]")

    def read_inline(ind, i, target, nbytes, composed):
        """Emit a page-cache-inlined read into ``target``; ``composed``
        maps the backing's local name to the value expression over
        ``_o``."""
        slow = {1: "_mr8", 2: "_mr16", 4: "_mr32"}[nbytes]
        need.add(slow)
        if style == "slow":
            slow_fj(ind, i)
            L(ind, f"{target} = {slow}(_a)")
            return
        limit = _PAGE_SIZE - nbytes
        word = nbytes == 4 and use_mv
        refresh_page(ind, i, word, write=False)
        off = f"_a - _lb{i}"
        ld = f"_ld{i}"
        if word:
            L(ind, f"if _mv{i} is not None:")
            L(ind + 1, f"{target} = _mv{i}[({off}) >> 2]")
            L(ind, f"elif {ld} is not None:")
            L(ind + 1, f"_o = {off}")
            L(ind + 1, f"{target} = {composed(ld)}")
        elif nbytes == 1:
            L(ind, f"if {ld} is not None:")
            L(ind + 1, f"{target} = {ld}[{off}]")
        elif check_align:
            L(ind, f"if {ld} is not None:")
            L(ind + 1, f"_o = {off}")
            L(ind + 1, f"{target} = {composed(ld)}")
        else:
            L(ind, f"if {ld} is not None and (_o := {off}) <= {limit}:")
            L(ind + 1, f"{target} = {composed(ld)}")
        L(ind, "else:")
        slow_fj(ind + 1, i)
        L(ind + 1, f"{target} = {slow}(_a)")

    def write_inline(ind, i, value, nbytes, byte_lines):
        """Emit a page-cache-inlined write of ``value``; ``byte_lines``
        maps the backing's local name to per-byte stores over ``_o``."""
        slow = {1: "_mw8", 2: "_mw16", 4: "_mw32"}[nbytes]
        need.add(slow)
        if style == "slow":
            slow_fj(ind, i)
            L(ind, f"{slow}(_a, {value})")
            return
        limit = _PAGE_SIZE - nbytes
        word = nbytes == 4 and use_mv
        refresh_page(ind, i, word, write=True)
        ld = f"_ld{i}"
        off = f"_a - _lb{i}"
        wcond = f"{ld} is not None and _lw{i}"
        mvcond = f"_mv{i} is not None and _lw{i}"
        if word:
            L(ind, f"if {mvcond}:")
            L(ind + 1, f"_mv{i}[({off}) >> 2] = {value}")
            L(ind, f"elif {wcond}:")
            L(ind + 1, f"_o = {off}")
            for bl in byte_lines(ld):
                L(ind + 1, bl)
        elif nbytes == 1:
            L(ind, f"if {wcond}:")
            L(ind + 1, f"{ld}[{off}] = {value} & 255")
        elif check_align:
            L(ind, f"if {wcond}:")
            L(ind + 1, f"_o = {off}")
            for bl in byte_lines(ld):
                L(ind + 1, bl)
        else:
            L(ind, f"if {wcond} and (_o := {off}) <= {limit}:")
            for bl in byte_lines(ld):
                L(ind + 1, bl)
        L(ind, "else:")
        slow_fj(ind + 1, i)
        L(ind + 1, f"{slow}(_a, {value})")

    def mem_cycles(ind, i, call_name):
        # Data-access cost.  With the page locals resolved, the page's
        # region (hence its fill/uncached costs) is a baked constant, so
        # the whole stock-dcache access — LRU tag list, hit/miss stats,
        # miss cost — inlines; only pages spanning regions keep the
        # call.  ``_lc{i}`` 1 = cacheable behind a dcache, 0 = constant
        # cost, -1 = slow.
        need.add(call_name)
        if not dc_inline:
            L(ind, f"cycles += {call_name}(_a)")
            return
        cost = f"_lsc{i}" if call_name == "_stc" else f"_lmc{i}"
        if dcache is not None:
            need.update(("_dc", "_dsets"))
            L(ind, f"if _lc{i} == 1:")
            L(ind + 1, f"_ln = {dc_line}")
            L(ind + 1, f"_ts = _dsets[{dc_set}]")
            L(ind + 1, f"_tg = {dc_tag}")
            L(ind + 1, "if _ts and _ts[-1] == _tg:")
            L(ind + 2, "_dc.hits += 1")
            L(ind + 2, "cycles += 1")
            if dcache.ways > 1:
                L(ind + 1, "elif _tg in _ts:")
                L(ind + 2, "_ts.remove(_tg)")
                L(ind + 2, "_ts.append(_tg)")
                L(ind + 2, "_dc.hits += 1")
                L(ind + 2, "cycles += 1")
            L(ind + 1, "else:")
            L(ind + 2, "_dc.misses += 1")
            L(ind + 2, "_ts.append(_tg)")
            L(ind + 2, f"if len(_ts) > {dcache.ways}:")
            L(ind + 3, "_ts.pop(0)")
            L(ind + 2, f"cycles += {cost}")
            L(ind, f"elif _lc{i} == 0:")
        else:
            L(ind, f"if _lc{i} == 0:")
        L(ind + 1, f"cycles += {cost}")
        L(ind, "else:")
        L(ind + 1, f"cycles += {call_name}(_a)")

    # --- per-instruction emission -----------------------------------------------
    wb = sorted(writes)

    def static_hz(i):
        # RAW interlock between two instructions *inside* the block is
        # statically known; only instruction 0 sees the caller's pending
        # writeback (and on loop iterations >= 2 the terminator cleared
        # it, so _hz0 is zeroed at the back edge).
        if not timed or i == 0:
            return 0
        prd, pil = _pending_after(ops[i - 1][1])
        if prd and prd in ops[i][1][6]:
            return hz_load if pil else hz_other
        return 0

    def const_cost(op):
        k = op[0]
        if k < 14:
            return 1
        if k < 17:
            return timing.shift_cycles(op[3])
        if k < 20:
            return 1  # reg shift: +shamt emitted dynamically if iterative
        if k < 24:
            return mul_c
        if k < 28:
            return div_c
        if k == _m._K_JAL:
            return jal_c
        if k == _m._K_JALR:
            return jalr_c
        return 0  # loads/stores/branches/CFU: data-dependent

    def prologue(ind, i, p, op):
        if not timed:
            return
        k = op[0]
        fault_capable = 32 <= k < 43 or k == _m._K_CFU
        if ic_mode == "line" and i > 0 and p // ic_lb == ops[i - 1][0] // ic_lb:
            # Same icache line as the previous fetch with no icache
            # access in between: guaranteed MRU hit, zero cycles.
            ih_pending[0] += 1
            fetch_real = False
        else:
            fetch_real = ic_mode != "const"
        if fetch_real or fault_capable:
            flush_hits(ind)
            L(ind, f"_fj = {i}")
        if profiled:
            L(ind, "_c0 = cycles")
        cost = const_cost(op) + static_hz(i)
        if ic_mode == "const":
            cost += fetch_const
        if fetch_real:
            need.add("_ft")
            line = f"cycles += _ft({p})"
            if cost:
                line += f" + {cost}"
            if i == 0 and hz0_needed:
                line += " + _hz0"
            if loop_ic_hoist:
                # Real fetch only on iteration 1; afterwards the line
                # is a guaranteed MRU hit (see the hoist gate above).
                need.add("_ic")
                L(ind, "if _it:")
                L(ind + 1, "_ic.hits += 1")
                if cost:
                    L(ind + 1, f"cycles += {cost}")
                L(ind, "else:")
                L(ind + 1, line)
            else:
                L(ind, line)
        else:
            parts = ([str(cost)] if cost else [])
            if i == 0 and hz0_needed:
                parts.append("_hz0")
            if parts:
                L(ind, "cycles += " + " + ".join(parts))

    def store_bail(ind, i, p):
        # A store just invalidated cached pages (possibly this block's):
        # finish the store's own accounting and hand back to the
        # dispatch loop, exactly where tier 1 would re-dispatch.
        if timed:
            need.add("_stc")
            L(ind, "cycles += _stc(_a)")
        attr(ind, i)
        for n in wb:
            L(ind, f"_R[{n}] = _r{n}")
        done = f"{n_ops} * _it + {i + 1}" if loop else str(i + 1)
        if timed:
            L(ind, f"return ({p + 4}, cycles, {done}, 0, False)")
        else:
            L(ind, f"return ({p + 4}, cycles + {done}, {done},"
                   " pending_rd, pending_is_load)")

    def emit_instr(ind, i, p, op):
        k = op[0]
        rd = op[1]
        prologue(ind, i, p, op)
        if k < 14:  # ALU + constants
            r1 = R(op[2])
            if k == _m._K_ADDI:
                e = r1 if op[3] == 0 else f"({r1} + {op[3]}) & 4294967295"
            elif k == _m._K_SLTI:
                e = f"1 if {sx(r1)} < {op[3]} else 0"
            elif k == _m._K_SLTIU:
                e = f"1 if {r1} < {op[3]} else 0"
            elif k == _m._K_XORI:
                e = f"{r1} ^ {op[3] & _M32}"
            elif k == _m._K_ORI:
                e = f"{r1} | {op[3] & _M32}"
            elif k == _m._K_ANDI:
                e = f"{r1} & {op[3] & _M32}"
            elif k == _m._K_ADD:
                e = f"({r1} + {R(op[3])}) & 4294967295"
            elif k == _m._K_SUB:
                e = f"({r1} - {R(op[3])}) & 4294967295"
            elif k == _m._K_SLT:
                e = f"1 if {sx(r1)} < {sx(R(op[3]))} else 0"
            elif k == _m._K_SLTU:
                e = f"1 if {r1} < {R(op[3])} else 0"
            elif k == _m._K_XOR:
                e = f"{r1} ^ {R(op[3])}"
            elif k == _m._K_OR:
                e = f"{r1} | {R(op[3])}"
            elif k == _m._K_AND:
                e = f"{r1} & {R(op[3])}"
            else:  # _K_CONST: lui/auipc fully precomputed
                e = str(op[3])
            if rd:
                L(ind, f"_r{rd} = {e}")
        elif k < 20:  # shifts
            r1 = R(op[2])
            if k < 17:
                sh = op[3]
                if k == _m._K_SLLI:
                    e = f"({r1} << {sh}) & 4294967295" if sh else r1
                elif k == _m._K_SRLI:
                    e = f"{r1} >> {sh}"
                else:  # SRAI
                    e = f"({sx(r1)} >> {sh}) & 4294967295"
                if rd:
                    L(ind, f"_r{rd} = {e}")
            else:
                iterative = timed and not barrel
                if iterative:
                    L(ind, f"_sh = {R(op[3])} & 31")
                    shex = "_sh"
                else:
                    shex = f"({R(op[3])} & 31)"
                if k == _m._K_SLL:
                    e = f"({r1} << {shex}) & 4294967295"
                elif k == _m._K_SRL:
                    e = f"{r1} >> {shex}"
                else:  # SRA
                    e = f"({sx(r1)} >> {shex}) & 4294967295"
                if rd:
                    L(ind, f"_r{rd} = {e}")
                if iterative:
                    L(ind, "cycles += _sh")
        elif k < 28:  # mul/div
            if k == _m._K_MUL:
                e = f"({R(op[2])} * {R(op[3])}) & 4294967295"
            else:
                need.add("_md")
                e = f"_md({k}, {R(op[2])}, {R(op[3])}) & 4294967295"
            if rd:
                L(ind, f"_r{rd} = {e}")
        elif k < 37:  # loads
            L(ind, f"_a = {addr_expr(op[2], op[3])}")
            target = f"_r{rd}" if rd else "_v"
            if k == _m._K_LW:
                misalign(ind, i, p, 4, 3)
                read_inline(ind, i, target, 4, lambda d: (
                    f"{d}[_o] | {d}[_o + 1] << 8"
                    f" | {d}[_o + 2] << 16 | {d}[_o + 3] << 24"))
            elif k == _m._K_LBU:
                read_inline(ind, i, target, 1, None)
            elif k == _m._K_LB:
                read_inline(ind, i, "_v", 1, None)
                if rd:
                    L(ind, f"_r{rd} = _v | 4294967040 if _v & 128 else _v")
            elif k == _m._K_LHU:
                misalign(ind, i, p, 2, 1)
                read_inline(ind, i, target, 2,
                            lambda d: f"{d}[_o] | {d}[_o + 1] << 8")
            else:  # LH
                misalign(ind, i, p, 2, 1)
                read_inline(ind, i, "_v", 2,
                            lambda d: f"{d}[_o] | {d}[_o + 1] << 8")
                if rd:
                    L(ind, f"_r{rd} = _v | 4294901760 if _v & 32768 else _v")
            if timed:
                mem_cycles(ind, i, "_ldc")
        elif k < 43:  # stores
            L(ind, f"_a = {addr_expr(op[1], op[3])}")
            value = R(op[2])
            if k == _m._K_SW:
                span = 3
                misalign(ind, i, p, 4, 3)
                write_inline(ind, i, value, 4, lambda d: [
                    f"{d}[_o] = {value} & 255",
                    f"{d}[_o + 1] = {value} >> 8 & 255",
                    f"{d}[_o + 2] = {value} >> 16 & 255",
                    f"{d}[_o + 3] = {value} >> 24",
                ])
            elif k == _m._K_SB:
                span = 0
                write_inline(ind, i, value, 1, None)
            else:  # SH
                span = 1
                misalign(ind, i, p, 2, 1)
                write_inline(ind, i, value, 2, lambda d: [
                    f"{d}[_o] = {value} & 255",
                    f"{d}[_o + 1] = {value} >> 8 & 255",
                ])
            need.update(("_DP", "_BP", "_SI"))
            if style == "slow":
                L(ind, "_p = _a >> 12")
            if span and not check_align:
                L(ind, f"_q = (_a + {span}) >> 12")
                cond = "_p in _DP or _p in _BP or _q in _DP or _q in _BP"
            else:
                cond = "_p in _DP or _p in _BP"
            L(ind, f"if {cond}:")
            L(ind + 1, f"_SI(_a, {span})")
            store_bail(ind + 1, i, p)
            if timed:
                mem_cycles(ind, i, "_stc")
        else:  # CFU (k == _K_CFU): executes in-block, see module docstring
            if not timed:
                L(ind, f"_fj = {i}")
            f3, f7 = op[4]
            ra, rb = R(op[2]), R(op[3])
            fast_target = f"_r{rd}" if rd else "_v"
            L(ind, f"if _f{i} is not None:")
            L(ind + 1, f"{fast_target} = _f{i}({ra}, {rb})")
            if timed:
                L(ind + 1, "cycles += 1")
            L(ind, "else:")
            msg = f"CFU instruction at pc=0x{p:08x} but no CFU attached"
            L(ind + 1, "if _cx is None:")
            L(ind + 2, f"raise RuntimeError({msg!r})")
            L(ind + 1, f"_v, _cl = _cx({f3}, {f7}, {ra}, {rb})")
            if rd:
                L(ind + 1, f"_r{rd} = _v & 4294967295")
            if timed:
                L(ind + 1, "cycles += 1 + (_cl - 1 if _cl > 1 else 0)")
        attr(ind, i)

    def cond_expr(op):
        k = op[0]
        a, b = R(op[1]), R(op[2])
        if k == _m._K_BEQ:
            return f"{a} == {b}"
        if k == _m._K_BNE:
            return f"{a} != {b}"
        if k == _m._K_BLTU:
            return f"{a} < {b}"
        if k == _m._K_BGEU:
            return f"{a} >= {b}"
        if k == _m._K_BLT:
            return f"{sx(a)} < {sx(b)}"
        return f"{sx(a)} >= {sx(b)}"

    def back_edge(ind, i):
        # The terminator jumped back to the entry pc: account the
        # finished pass, re-check the instruction budget (precomputed
        # as whole passes in _bq), and either loop in-function or hand
        # the entry pc back to the dispatcher.
        L(ind, "_it += 1")
        if hz0_needed and not loop_ic_hoist:
            L(ind, "_hz0 = 0")
        L(ind, "if _it >= _bq:")
        L(ind + 1, f"_pc = {entry_pc}")
        L(ind + 1, f"_n = {n_ops} * _it")
        L(ind + 1, "break")
        L(ind, "continue")

    def emit_branch_cycles(ind, p, op):
        # cycles for the branch slot + penalty; ``_t`` holds taken.
        if not bp_inline:
            need.add("_bp")
            L(ind, f"cycles += 1 + _bp({p}, _t, {bool(op[4])})")
            return
        kind = predictor.kind
        mp = timing.config.mispredict_penalty
        kt = predictor.knows_target()
        hit_t = 1 if kt else 2  # correct taken: redirect bubble sans BTB
        if kind == "none":
            L(ind, f"cycles += {1 + mp} if _t else 1")
            return
        if kind == "static":
            backward = bool(op[4])
            ct = hit_t if backward else 1 + mp
            cnt = 1 + mp if backward else 1
            L(ind, f"cycles += {ct} if _t else {cnt}")
            return
        # dynamic / dynamic_target: the table index is baked, the 2-bit
        # counter read/update and penalty pick inline to integer ops.
        need.add("_bpc")
        idx = (p >> 2) % predictor.table_size
        L(ind, f"_ct = _bpc[{idx}]")
        L(ind, "if _t:")
        L(ind + 1, "if _ct < 3:")
        L(ind + 2, f"_bpc[{idx}] = _ct + 1")
        L(ind + 1, f"cycles += {1 + mp} if _ct < 2 else {hit_t}")
        L(ind, "else:")
        L(ind + 1, "if _ct > 0:")
        L(ind + 2, f"_bpc[{idx}] = _ct - 1")
        L(ind + 1, f"cycles += {1 + mp} if _ct >= 2 else 1")

    def emit_terminator(ind, i, p, op):
        k = op[0]
        if term == "branch":
            prologue(ind, i, p, op)
            flush_hits(ind)
            if timed:
                L(ind, f"_t = {cond_expr(op)}")
                emit_branch_cycles(ind, p, op)
                attr(ind, i)
                if loop:
                    L(ind, "if _t:")
                    back_edge(ind + 1, i)
                    L(ind, f"_pc = {p + 4}")
                    L(ind, f"_n = {n_ops} * (_it + 1)")
                    L(ind, "break")
                else:
                    L(ind, f"_pc = {op[3]} if _t else {p + 4}")
            else:
                attr(ind, i)
                if loop:
                    L(ind, f"if {cond_expr(op)}:")
                    back_edge(ind + 1, i)
                    L(ind, f"_pc = {p + 4}")
                    L(ind, f"_n = {n_ops} * (_it + 1)")
                    L(ind, "break")
                else:
                    L(ind, f"_pc = {op[3]} if {cond_expr(op)} else {p + 4}")
        elif k == _m._K_JAL:
            prologue(ind, i, p, op)
            flush_hits(ind)
            if op[1]:
                L(ind, f"_r{op[1]} = {op[2]}")
            attr(ind, i)
            if loop:
                back_edge(ind, i)
            else:
                L(ind, f"_pc = {op[3]}")
        else:  # JALR
            prologue(ind, i, p, op)
            flush_hits(ind)
            if op[2] == 0:
                L(ind, f"_t = {op[3] & 0xFFFFFFFE}")
            elif op[3] == 0:
                L(ind, f"_t = {R(op[2])} & 4294967294")
            else:
                L(ind, f"_t = ({R(op[2])} + {op[3]}) & 4294967294")
            if op[1]:
                L(ind, f"_r{op[1]} = {op[4]}")
            attr(ind, i)
            L(ind, "_pc = _t")

    # --- assemble the function ---------------------------------------------------
    first_reads = tuple(dict.fromkeys(r for r in ops[0][1][6] if r))
    hz0_needed = timed and bool(first_reads)
    has_try = timed or any(32 <= op[0] < 43 or op[0] == _m._K_CFU
                           for _p, op in ops)
    base = 1 + (1 if has_try else 0) + (1 if loop else 0)

    body_count = n_ops - 1 if term != "fall" else n_ops
    for i in range(body_count):
        emit_instr(base, i, ops[i][0], ops[i][1])
    if term == "fall":
        flush_hits(base)
        L(base, f"_pc = {entry_pc + 4 * n_ops}")
    else:
        emit_terminator(base, n_ops - 1, last_pc, last_op)

    lines = []
    A1 = "    "
    for n in sorted(reads | writes):
        lines.append(f"{A1}_r{n} = _R[{n}]")
    if profiled:
        # The profiler may rebind its bucket dict between runs, so the
        # accessors arrive as call arguments; per-pc buckets are stable
        # within a run and get hoisted out of the loop here.
        for i, (p, _op) in enumerate(ops):
            lines.append(f"{A1}_bk{i} = _BG({p}) or _NB({p})")
    if hz0_needed:
        hcond = " or ".join(f"pending_rd == {r}" for r in first_reads)
        if hz_load == hz_other:
            lines.append(f"{A1}_hz0 = {hz_load} if ({hcond}) else 0")
        else:
            lines.append(f"{A1}_hz0 = ({hz_load} if pending_is_load else"
                         f" {hz_other}) if ({hcond}) else 0")
    if use_pcache:
        for i, (_p, op) in enumerate(ops):
            if not 32 <= op[0] < 43:
                continue
            lines.append(f"{A1}_lp{i} = -1")
            lines.append(f"{A1}_ld{i} = None")
            if use_mv and op[0] in (_m._K_LW, _m._K_SW):
                lines.append(f"{A1}_mv{i} = None")
    if cfu_sites:
        # Resolve the CFU call targets — the generic execute plus any
        # single-latency fast_call the model offers for a baked
        # (funct3, funct7) pair — once per *bound CFU*, not per call:
        # the cross-call cache list re-resolves only when the machine's
        # cfu identity changes.
        need.add("_CC")
        lines.append(f"{A1}if _CC[0] is not _cfu:")
        lines.append(f"{A1 * 2}_CC[0] = _cfu")
        lines.append(f"{A1 * 2}_CC[1] = None if _cfu is None"
                     " else _cfu.execute")
        lines.append(f"{A1 * 2}_fc = None if _cfu is None"
                     " else getattr(_cfu, 'fast_call', None)")
        for j, i in enumerate(cfu_sites):
            f3, f7 = ops[i][1][4]
            lines.append(f"{A1 * 2}_CC[{2 + j}] = None if _fc is None"
                         f" else _fc({f3}, {f7})")
        lines.append(f"{A1}_cx = _CC[1]")
        for j, i in enumerate(cfu_sites):
            lines.append(f"{A1}_f{i} = _CC[{2 + j}]")
    if has_try:
        lines.append(f"{A1}_fj = 0")
    if loop:
        lines.append(f"{A1}_it = 0")
        lines.append(f"{A1}_bq = _budget // {n_ops}")
    if has_try:
        lines.append(f"{A1}try:")
    if loop:
        lines.append(A1 * (2 if has_try else 1) + "while True:")
    lines.extend(out)
    if has_try:
        need.add("_F")
        lines.append(f"{A1}except BaseException:")
        for n in wb:
            lines.append(f"{A1 * 2}_R[{n}] = _r{n}")
        lines.append(f"{A1 * 2}_F[0] = {entry_pc} + _fj * 4")
        if timed:
            lines.append(f"{A1 * 2}_F[1] = cycles")
        elif loop:
            lines.append(f"{A1 * 2}_F[1] = cycles + {n_ops} * _it + _fj")
        else:
            lines.append(f"{A1 * 2}_F[1] = cycles + _fj")
        if loop:
            lines.append(f"{A1 * 2}_F[2] = {n_ops} * _it + _fj")
        else:
            lines.append(f"{A1 * 2}_F[2] = _fj")
        lines.append(f"{A1 * 2}raise")
    tail = [f"{A1}_R[{n}] = _r{n}" for n in wb]
    done = "_n" if loop else str(n_ops)
    if timed:
        prd, pil = _pending_after(last_op)
        tail.append(f"{A1}return (_pc, cycles, {done}, {prd}, {pil})")
    else:
        tail.append(f"{A1}return (_pc, cycles + {done}, {done},"
                    " pending_rd, pending_is_load)")

    prof_params = ", _BG, _NB" if profiled else ""
    # Baked objects ride in as argument defaults (evaluated once at
    # def time from the exec globals): local-variable access speed in
    # the body, no cell indirection.
    defaults = "".join(f", {name}={name}" for name in sorted(need))
    head = (f"def _block(_R, cycles, pending_rd, pending_is_load,"
            f" _cfu, _budget{prof_params}{defaults}):")
    source = "\n".join([head] + lines + tail) + "\n"
    return source, need, len(cfu_sites)
