"""CFU Playground reproduction: full-stack HW/SW co-design for TinyML.

A faithful, laptop-scale reproduction of "CFU Playground: Full-Stack
Open-Source Framework for TinyML Acceleration on FPGAs" (ISPASS 2023):
an nMigen-style RTL toolkit, an RV32IM soft CPU with a VexRiscv-style
configuration space, a LiteX-style SoC builder with board models, a
TFLite-Micro-compatible int8 inference stack, the Custom Function Unit
abstraction with software emulation and golden testing, a mechanistic
performance model, the paper's two optimization ladders, and a
Vizier-style design-space explorer.

Entry points:

- :class:`repro.core.Playground` — the deploy-profile-optimize loop.
- :mod:`repro.models` — the bundled MLPerf-Tiny-style model zoo.
- :mod:`repro.core.ladders` — the Fig. 4 / Fig. 6 ladders.
- :mod:`repro.dse` — the Fig. 7 design-space exploration.
"""

from . import boards, cfu, core, cpu, dse, emu, kernels, models, perf, rtl, soc, tflm
from .core import Playground

__version__ = "1.0.0"

__all__ = [
    "Playground", "boards", "cfu", "core", "cpu", "dse", "emu", "kernels",
    "models", "perf", "rtl", "soc", "tflm", "__version__",
]
